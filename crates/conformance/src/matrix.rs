//! The conformance matrix: cell registry, runner, and failure shrinking.
//!
//! A *cell* is one (kernel × format × backend × strategy × pool size)
//! combination with a ULP budget and an executor that returns the pair
//! `(got, want)` in that cell's comparison space:
//!
//! - CPU cells for TEW/TS/TTV/TTM compare dense output images against the
//!   [`pasta_kernels::dense_ref`] oracles;
//! - GPU cells for TEW/TS compare value arrays bit-for-bit against the CPU
//!   kernel of the same format (the paper's GPU element-wise kernels share
//!   one COO value loop across formats);
//! - GPU TTV/TTM compare value arrays against the sequential CPU kernel
//!   (both sort mode-last, so the streams align);
//! - MTTKRP strategy cells compare against the sequential kernel —
//!   bit-identical for owner-computes on a mode-outermost-sorted tensor,
//!   ULP-bounded for privatized reduction — and the rest against the dense
//!   oracle.

use crate::cases::{self, Case};
use crate::oracle::worst_ulp;
use pasta_core::linalg::{gram, hadamard, normalize_columns, Cholesky};
use pasta_core::{
    seeded_matrix, seeded_vector, CooTensor, Coord, CsfTensor, DenseMatrix, DenseVector,
    FCooTensor, GHiCooTensor, HiCooTensor, Result, SHiCooTensor, SemiCooTensor,
};
use pasta_kernels::dense_ref::{
    mttkrp_dense, tew_dense, ts_dense, ttm_dense, ttv_dense, ORACLE_MAX_ENTRIES,
};
use pasta_kernels::{
    expr_registry, force_simd, fused_registry, lower, mttkrp_coo, mttkrp_csf_root, mttkrp_hicoo,
    registry, tew_coo_same_pattern, tew_csf, tew_fcoo, tew_ghicoo, tew_hicoo, tew_scoo, tew_shicoo,
    ts_coo, ts_csf, ts_fcoo, ts_ghicoo, ts_hicoo, ts_scoo, ts_shicoo, ttm_coo, ttm_hicoo, ttm_scoo,
    ttv_coo, ttv_csf_leaf, ttv_fcoo, ttv_hicoo, BackendKind, Bindings, Combo, Ctx, EwOp, ExprGraph,
    ExprOut, ExprRoute, FormatKind, FusedAlsSweep, FusedExprKind, FusedRoute, FusedTtmChainPlan,
    FusedTtvPlan, Kernel, MatOperand, SimdLevel, StrategyChoice, TsOp, VecOperand,
};
use pasta_par::Schedule;
use pasta_serve::{
    direct_eval, serve_registry, Catalog as ServeCatalog, ExprSpec, ExprStep, MttkrpRoute, OpSpec,
    Request as ServeRequest, ServeRoute, Server, ServerConfig,
};
use pasta_simt::{launch, p100};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// The scalar used by every TS cell.
pub const TS_SCALAR: f32 = 1.5;

/// Everything an executor may need for one case, computed once.
#[allow(missing_docs)]
pub struct CaseCtx {
    pub case: Case,
    pub x: CooTensor<f32>,
    /// Same pattern as `x`, independent seeded values (second TEW operand).
    pub y: CooTensor<f32>,
    /// `x` sorted with `case.mode` outermost (the owner-computes contract).
    pub sorted_x: CooTensor<f32>,
    pub hx: HiCooTensor<f32>,
    pub hy: HiCooTensor<f32>,
    pub gx: GHiCooTensor<f32>,
    pub gy: GHiCooTensor<f32>,
    pub sx: SemiCooTensor<f32>,
    pub sy: SemiCooTensor<f32>,
    pub shx: SHiCooTensor<f32>,
    pub shy: SHiCooTensor<f32>,
    /// CSF with `case.mode` as the *root* level (MTTKRP, element-wise).
    pub cx_root: CsfTensor<f32>,
    /// Same tree shape over `y`'s values (second TEW operand).
    pub cy_root: CsfTensor<f32>,
    /// CSF with `case.mode` as the *leaf* level (leaf-mode TTV).
    pub cx_leaf: CsfTensor<f32>,
    /// F-COO fibered along `case.mode`.
    pub fx: FCooTensor<f32>,
    /// Same fiber structure over `y`'s values.
    pub fy: FCooTensor<f32>,
    pub v: DenseVector<f32>,
    pub u: DenseMatrix<f32>,
    pub factors: Vec<DenseMatrix<f32>>,
}

/// Converts a COO tensor to sCOO with the last mode dense (merging any
/// duplicate coordinates into the fiber slot).
fn coo_to_scoo(x: &CooTensor<f32>) -> Result<SemiCooTensor<f32>> {
    let order = x.order();
    let dm = order - 1;
    let dlen = x.shape().dim(dm) as usize;
    let mut fibers: BTreeMap<Vec<Coord>, Vec<f32>> = BTreeMap::new();
    for (coords, v) in x.iter() {
        let f = fibers.entry(coords[..dm].to_vec()).or_insert_with(|| vec![0.0; dlen]);
        f[coords[dm] as usize] += v;
    }
    let mut inds: Vec<Vec<Coord>> = vec![Vec::new(); dm];
    let mut vals = Vec::with_capacity(fibers.len() * dlen);
    for (key, f) in fibers {
        for (k, &c) in key.iter().enumerate() {
            inds[k].push(c);
        }
        vals.extend(f);
    }
    SemiCooTensor::from_fibers(x.shape().clone(), vec![dm], inds, vals)
}

impl CaseCtx {
    /// Builds all format conversions and derived operands for `case`.
    ///
    /// # Errors
    ///
    /// Propagates any construction error (out-of-range entries in a
    /// hand-edited case file, invalid block sizes).
    pub fn new(case: &Case) -> Result<Self> {
        let x = case.tensor()?;
        let mut y = x.like_pattern(0.0_f32);
        let mut st = case.seed ^ 0x59ED;
        for v in y.vals_mut() {
            *v = cases::unit_val(&mut st);
        }
        let mut sorted_x = x.clone();
        let mut mode_order = vec![case.mode];
        mode_order.extend((0..case.order()).filter(|&m| m != case.mode));
        sorted_x.sort_by_mode_order(&mode_order);

        let blocked: Vec<bool> = (0..case.order()).map(|m| m % 2 == 0).collect();
        let sx = coo_to_scoo(&x)?;
        let sy = coo_to_scoo(&y)?;
        let root_order = {
            let mut mo = vec![case.mode];
            mo.extend((0..case.order()).filter(|&m| m != case.mode));
            mo
        };
        let leaf_order = {
            let mut mo: Vec<usize> = (0..case.order()).filter(|&m| m != case.mode).collect();
            mo.push(case.mode);
            mo
        };
        let rank = case.rank;
        let v = seeded_vector::<f32>(x.shape().dim(case.mode) as usize, case.seed ^ 0x7EC);
        let u = seeded_matrix::<f32>(x.shape().dim(case.mode) as usize, rank, case.seed ^ 0x77);
        let factors: Vec<DenseMatrix<f32>> = (0..case.order())
            .map(|m| seeded_matrix(x.shape().dim(m) as usize, rank, case.seed ^ (0xFAC + m as u64)))
            .collect();
        Ok(Self {
            hx: HiCooTensor::from_coo(&x, case.block)?,
            hy: HiCooTensor::from_coo(&y, case.block)?,
            gx: GHiCooTensor::from_coo(&x, case.block, &blocked)?,
            gy: GHiCooTensor::from_coo(&y, case.block, &blocked)?,
            shx: SHiCooTensor::from_scoo(&sx, case.block)?,
            shy: SHiCooTensor::from_scoo(&sy, case.block)?,
            cx_root: CsfTensor::from_coo(&x, &root_order)?,
            cy_root: CsfTensor::from_coo(&y, &root_order)?,
            cx_leaf: CsfTensor::from_coo(&x, &leaf_order)?,
            fx: FCooTensor::from_coo(&x, case.mode)?,
            fy: FCooTensor::from_coo(&y, case.mode)?,
            sx,
            sy,
            v,
            u,
            factors,
            case: case.clone(),
            x,
            y,
            sorted_x,
        })
    }
}

/// Dense-fiber formats materialize structural zeros inside fibers, so
/// only zero-preserving ops compare cleanly against the sparse oracle.
fn dense_fibers(fmt: FormatKind) -> bool {
    matches!(fmt, FormatKind::Scoo | FormatKind::Shicoo)
}

fn tew_ops(fmt: FormatKind) -> &'static [EwOp] {
    if dense_fibers(fmt) {
        &[EwOp::Add, EwOp::Sub, EwOp::Mul]
    } else {
        &[EwOp::Add, EwOp::Sub, EwOp::Mul, EwOp::Div]
    }
}

fn ts_ops(fmt: FormatKind) -> &'static [TsOp] {
    if dense_fibers(fmt) {
        &[TsOp::Mul, TsOp::Div]
    } else {
        &[TsOp::Add, TsOp::Sub, TsOp::Mul, TsOp::Div]
    }
}

/// The TEW result for `fmt` as (dense image, raw value array).
fn tew_fmt(cc: &CaseCtx, fmt: FormatKind, op: EwOp, ctx: &Ctx) -> Result<(Vec<f32>, Vec<f32>)> {
    Ok(match fmt {
        FormatKind::Coo => {
            let z = tew_coo_same_pattern(op, &cc.x, &cc.y, ctx)?;
            (z.to_dense(ORACLE_MAX_ENTRIES), z.vals().to_vec())
        }
        FormatKind::Hicoo => {
            let z = tew_hicoo(op, &cc.hx, &cc.hy, ctx)?;
            (z.to_coo().to_dense(ORACLE_MAX_ENTRIES), z.vals().to_vec())
        }
        FormatKind::Ghicoo => {
            let z = tew_ghicoo(op, &cc.gx, &cc.gy, ctx)?;
            (z.to_coo().to_dense(ORACLE_MAX_ENTRIES), z.vals().to_vec())
        }
        FormatKind::Scoo => {
            let z = tew_scoo(op, &cc.sx, &cc.sy, ctx)?;
            (z.to_coo().to_dense(ORACLE_MAX_ENTRIES), z.vals().to_vec())
        }
        FormatKind::Shicoo => {
            let z = tew_shicoo(op, &cc.shx, &cc.shy, ctx)?;
            (z.to_scoo()?.to_coo().to_dense(ORACLE_MAX_ENTRIES), z.vals().to_vec())
        }
        FormatKind::Csf => {
            let z = tew_csf(op, &cc.cx_root, &cc.cy_root, ctx)?;
            (z.to_coo().to_dense(ORACLE_MAX_ENTRIES), z.vals().to_vec())
        }
        FormatKind::Fcoo => {
            let z = tew_fcoo(op, &cc.fx, &cc.fy, ctx)?;
            (z.to_coo().to_dense(ORACLE_MAX_ENTRIES), z.vals().to_vec())
        }
    })
}

/// The TS result for `fmt` as (dense image, raw value array).
fn ts_fmt(cc: &CaseCtx, fmt: FormatKind, op: TsOp, ctx: &Ctx) -> Result<(Vec<f32>, Vec<f32>)> {
    Ok(match fmt {
        FormatKind::Coo => {
            let z = ts_coo(op, &cc.x, TS_SCALAR, ctx)?;
            (z.to_dense(ORACLE_MAX_ENTRIES), z.vals().to_vec())
        }
        FormatKind::Hicoo => {
            let z = ts_hicoo(op, &cc.hx, TS_SCALAR, ctx)?;
            (z.to_coo().to_dense(ORACLE_MAX_ENTRIES), z.vals().to_vec())
        }
        FormatKind::Ghicoo => {
            let z = ts_ghicoo(op, &cc.gx, TS_SCALAR, ctx)?;
            (z.to_coo().to_dense(ORACLE_MAX_ENTRIES), z.vals().to_vec())
        }
        FormatKind::Scoo => {
            let z = ts_scoo(op, &cc.sx, TS_SCALAR, ctx)?;
            (z.to_coo().to_dense(ORACLE_MAX_ENTRIES), z.vals().to_vec())
        }
        FormatKind::Shicoo => {
            let z = ts_shicoo(op, &cc.shx, TS_SCALAR, ctx)?;
            (z.to_scoo()?.to_coo().to_dense(ORACLE_MAX_ENTRIES), z.vals().to_vec())
        }
        FormatKind::Csf => {
            let z = ts_csf(op, &cc.cx_root, TS_SCALAR, ctx)?;
            (z.to_coo().to_dense(ORACLE_MAX_ENTRIES), z.vals().to_vec())
        }
        FormatKind::Fcoo => {
            let z = ts_fcoo(op, &cc.fx, TS_SCALAR, ctx)?;
            (z.to_coo().to_dense(ORACLE_MAX_ENTRIES), z.vals().to_vec())
        }
    })
}

/// The (x, y) value arrays the GPU element-wise value loop reads for `fmt`.
fn fmt_value_arrays(cc: &CaseCtx, fmt: FormatKind) -> (Vec<f32>, Vec<f32>) {
    match fmt {
        FormatKind::Coo => (cc.x.vals().to_vec(), cc.y.vals().to_vec()),
        FormatKind::Hicoo => (cc.hx.vals().to_vec(), cc.hy.vals().to_vec()),
        FormatKind::Ghicoo => (cc.gx.vals().to_vec(), cc.gy.vals().to_vec()),
        FormatKind::Scoo => (cc.sx.vals().to_vec(), cc.sy.vals().to_vec()),
        FormatKind::Shicoo => (cc.shx.vals().to_vec(), cc.shy.vals().to_vec()),
        FormatKind::Csf => (cc.cx_root.vals().to_vec(), cc.cy_root.vals().to_vec()),
        FormatKind::Fcoo => (cc.fx.vals().to_vec(), cc.fy.vals().to_vec()),
    }
}

type ExecFn = Box<dyn Fn(&CaseCtx) -> Result<(Vec<f32>, Vec<f32>)> + Send + Sync>;

/// One conformance cell: an executor plus its ULP budget.
pub struct Cell {
    /// Stable identifier, e.g. `mttkrp/coo/cpu/owner/t2`.
    pub id: String,
    /// Maximum tolerated ULP distance between `got` and `want`.
    pub budget: u64,
    exec: ExecFn,
}

impl std::fmt::Debug for Cell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cell").field("id", &self.id).field("budget", &self.budget).finish()
    }
}

impl Cell {
    fn new(
        id: String,
        budget: u64,
        exec: impl Fn(&CaseCtx) -> Result<(Vec<f32>, Vec<f32>)> + Send + Sync + 'static,
    ) -> Self {
        Self { id, budget, exec: Box::new(exec) }
    }

    /// Runs the executor, returning `(got, want)`.
    ///
    /// # Errors
    ///
    /// Propagates kernel errors; any error is a conformance failure.
    pub fn run(&self, cc: &CaseCtx) -> Result<(Vec<f32>, Vec<f32>)> {
        (self.exec)(cc)
    }
}

const TTV_BUDGET: u64 = 256;
const TTM_BUDGET: u64 = 256;
// Fused chains accumulate the whole expression in one pass while the
// composed dense oracle rounds once per step, so chain cells carry wider
// budgets than their single-kernel counterparts; the ALS sweep runs a
// Cholesky solve whose conditioning amplifies MTTKRP rounding further.
const FUSED_TTV_BUDGET: u64 = 512;
const FUSED_TTM_BUDGET: u64 = 1024;
const FUSED_ALS_BUDGET: u64 = 4096;
const MTTKRP_SEQ_BUDGET: u64 = 512;
const MTTKRP_PRIV_BUDGET: u64 = 1024;
const MTTKRP_HICOO_BUDGET: u64 = 1024;
const MTTKRP_CSF_BUDGET: u64 = 1024;
const MTTKRP_GPU_BUDGET: u64 = 4096;

/// A documented hole in the conformance matrix.
///
/// Every combo in [`pasta_kernels::registry`] must either have at least one
/// cell or appear here with `cases: None` (a whole-combo hole); an entry
/// with a `cases` predicate instead excuses individual cases a cell cannot
/// represent. A registered combo with neither is a test failure, so
/// coverage claims cannot silently rot.
pub struct SkipEntry {
    /// The kernel of the excused combo.
    pub kernel: Kernel,
    /// The format of the excused combo.
    pub format: FormatKind,
    /// The backend of the excused combo.
    pub backend: BackendKind,
    /// Why the hole is structural rather than a missing test.
    pub reason: &'static str,
    /// `Some(p)`: only cases satisfying `p` are excused. `None`: the whole
    /// combo has no cell.
    pub cases: Option<fn(&Case) -> bool>,
}

/// The explicit skip table.
pub fn skips() -> Vec<SkipEntry> {
    vec![SkipEntry {
        kernel: Kernel::Ttm,
        format: FormatKind::Scoo,
        backend: BackendKind::Cpu,
        reason: "contracting a sparse mode adds a second dense mode to the output; \
                 an order-2 sCOO tensor can hold at most one, so the configuration \
                 is structurally unrepresentable",
        cases: Some(|case| case.order() == 2 && case.mode != case.order() - 1),
    }]
}

/// The skip reason covering `case` for the given combo, if any.
pub fn skip_reason(
    kernel: Kernel,
    format: FormatKind,
    backend: BackendKind,
    case: &Case,
) -> Option<&'static str> {
    skips()
        .into_iter()
        .find(|s| {
            s.kernel == kernel
                && s.format == format
                && s.backend == backend
                && s.cases.is_none_or(|p| p(case))
        })
        .map(|s| s.reason)
}

/// CPU pool sizes exercised per cell family. The runner forces explicit
/// worker counts (never "all cores") so results do not depend on the host.
const POOLS: [usize; 2] = [1, 4];
const MTTKRP_POOLS: [usize; 2] = [2, 4];

/// Runs `f` with the process-wide SIMD dispatch pinned to `level`
/// (capped by what the host supports), restoring auto-detection afterwards
/// even across unwinds. Cells execute sequentially in [`run_matrix`], so
/// pinning is race-free within a run; on hosts without AVX2 both pinned
/// runs execute the scalar body and the cell degenerates to `x == x`.
fn with_simd<T>(level: SimdLevel, f: impl FnOnce() -> T) -> T {
    struct Reset;
    impl Drop for Reset {
        fn drop(&mut self) {
            force_simd(None);
        }
    }
    let _reset = Reset;
    force_simd(Some(level));
    f()
}

fn cpu_ctx(threads: usize) -> Ctx {
    Ctx::new(threads, Schedule::Static)
}

/// The full cell registry, generated from [`pasta_kernels::registry`]: each
/// registered combo contributes its cells through `push_combo_cells`, so
/// a combo added to the kernel registry without conformance coverage (and
/// without a [`skips`] entry) fails the completeness test.
pub fn cells() -> Vec<Cell> {
    let mut cs = Vec::new();
    for combo in registry() {
        push_combo_cells(&mut cs, combo);
    }
    for route in fused_registry() {
        push_fused_cells(&mut cs, route);
    }
    for route in expr_registry() {
        push_expr_cells(&mut cs, route);
    }
    for route in serve_registry() {
        push_serve_cells(&mut cs, route);
    }
    cs
}

/// Emits the conformance cells for one registered combo.
#[allow(clippy::too_many_lines)]
fn push_combo_cells(cs: &mut Vec<Cell>, combo: Combo) {
    use BackendKind::{Cpu, Gpu};
    match (combo.kernel, combo.format, combo.backend) {
        // TEW and TS: every format through the generic FormatAccess path,
        // CPU pools, 0 ULP.
        (Kernel::Tew, fmt, Cpu) => {
            for t in POOLS {
                cs.push(Cell::new(format!("tew/{fmt}/cpu/t{t}"), 0, move |cc| {
                    let ctx = cpu_ctx(t);
                    let (mut got, mut want) = (Vec::new(), Vec::new());
                    for &op in tew_ops(fmt) {
                        got.extend(tew_fmt(cc, fmt, op, &ctx)?.0);
                        want.extend(tew_dense(op, &cc.x, &cc.y)?);
                    }
                    Ok((got, want))
                }));
            }
        }
        (Kernel::Ts, fmt, Cpu) => {
            for t in POOLS {
                cs.push(Cell::new(format!("ts/{fmt}/cpu/t{t}"), 0, move |cc| {
                    let ctx = cpu_ctx(t);
                    let (mut got, mut want) = (Vec::new(), Vec::new());
                    for &op in ts_ops(fmt) {
                        got.extend(ts_fmt(cc, fmt, op, &ctx)?.0);
                        want.extend(ts_dense(op, &cc.x, TS_SCALAR)?);
                    }
                    Ok((got, want))
                }));
            }
        }
        // The registered GPU element-wise kernels are the shared COO value
        // loops; one registry row fans out to a cell per format's value
        // array, all bit-identical to the CPU kernels.
        (Kernel::Tew, FormatKind::Coo, Gpu) => {
            for fmt in FormatKind::ALL {
                cs.push(Cell::new(format!("tew/{fmt}/gpu"), 0, move |cc| {
                    let ctx = Ctx::sequential();
                    let (mut got, mut want) = (Vec::new(), Vec::new());
                    for &op in tew_ops(fmt) {
                        let (xv, yv) = fmt_value_arrays(cc, fmt);
                        let mut k = pasta_simt::GpuTewCoo::from_values(xv, yv, op)?;
                        launch(&p100(), &mut k);
                        got.extend(k.output());
                        want.extend(tew_fmt(cc, fmt, op, &ctx)?.1);
                    }
                    Ok((got, want))
                }));
            }
        }
        (Kernel::Ts, FormatKind::Coo, Gpu) => {
            for fmt in FormatKind::ALL {
                cs.push(Cell::new(format!("ts/{fmt}/gpu"), 0, move |cc| {
                    let ctx = Ctx::sequential();
                    let (mut got, mut want) = (Vec::new(), Vec::new());
                    for &op in ts_ops(fmt) {
                        let (xv, _) = fmt_value_arrays(cc, fmt);
                        let mut k = pasta_simt::GpuTsCoo::from_values(xv, op, TS_SCALAR)?;
                        launch(&p100(), &mut k);
                        got.extend(k.output());
                        want.extend(ts_fmt(cc, fmt, op, &ctx)?.1);
                    }
                    Ok((got, want))
                }));
            }
        }

        // TTV.
        (Kernel::Ttv, FormatKind::Coo, Cpu) => {
            for t in POOLS {
                cs.push(Cell::new(format!("ttv/coo/cpu/t{t}"), TTV_BUDGET, move |cc| {
                    let got = ttv_coo(&cc.x, &cc.v, cc.case.mode, &cpu_ctx(t))?
                        .to_dense(ORACLE_MAX_ENTRIES);
                    let want = ttv_dense(&cc.x, &cc.v, cc.case.mode)?.1;
                    Ok((got, want))
                }));
            }
            // SIMD dispatch parity: the vectorized gather_dot reduces in
            // fixed-width lanes, so it gets its own ULP budget against the
            // forced-scalar kernel.
            cs.push(Cell::new("ttv/coo/cpu/simd/t1".into(), TTV_BUDGET, |cc| {
                let ctx = Ctx::sequential();
                let got =
                    with_simd(SimdLevel::Avx2Fma, || ttv_coo(&cc.x, &cc.v, cc.case.mode, &ctx))?
                        .to_dense(ORACLE_MAX_ENTRIES);
                let want =
                    with_simd(SimdLevel::Scalar, || ttv_coo(&cc.x, &cc.v, cc.case.mode, &ctx))?
                        .to_dense(ORACLE_MAX_ENTRIES);
                Ok((got, want))
            }));
        }
        (Kernel::Ttv, FormatKind::Hicoo, Cpu) => {
            for t in POOLS {
                cs.push(Cell::new(format!("ttv/hicoo/cpu/t{t}"), TTV_BUDGET, move |cc| {
                    let got = ttv_hicoo(&cc.x, &cc.v, cc.case.mode, cc.case.block, &cpu_ctx(t))?
                        .to_coo()
                        .to_dense(ORACLE_MAX_ENTRIES);
                    let want = ttv_dense(&cc.x, &cc.v, cc.case.mode)?.1;
                    Ok((got, want))
                }));
            }
            cs.push(Cell::new("ttv/hicoo/cpu/simd/t1".into(), TTV_BUDGET, |cc| {
                let ctx = Ctx::sequential();
                let got = with_simd(SimdLevel::Avx2Fma, || {
                    ttv_hicoo(&cc.x, &cc.v, cc.case.mode, cc.case.block, &ctx)
                })?
                .to_coo()
                .to_dense(ORACLE_MAX_ENTRIES);
                let want = with_simd(SimdLevel::Scalar, || {
                    ttv_hicoo(&cc.x, &cc.v, cc.case.mode, cc.case.block, &ctx)
                })?
                .to_coo()
                .to_dense(ORACLE_MAX_ENTRIES);
                Ok((got, want))
            }));
        }
        (Kernel::Ttv, FormatKind::Csf, Cpu) => {
            for t in POOLS {
                cs.push(Cell::new(format!("ttv/csf/cpu/t{t}"), TTV_BUDGET, move |cc| {
                    let got =
                        ttv_csf_leaf(&cc.cx_leaf, &cc.v, &cpu_ctx(t))?.to_dense(ORACLE_MAX_ENTRIES);
                    let want = ttv_dense(&cc.x, &cc.v, cc.case.mode)?.1;
                    Ok((got, want))
                }));
            }
        }
        (Kernel::Ttv, FormatKind::Fcoo, Cpu) => {
            for t in POOLS {
                cs.push(Cell::new(format!("ttv/fcoo/cpu/t{t}"), TTV_BUDGET, move |cc| {
                    let got = ttv_fcoo(&cc.fx, &cc.v, &cpu_ctx(t))?.to_dense(ORACLE_MAX_ENTRIES);
                    let want = ttv_dense(&cc.x, &cc.v, cc.case.mode)?.1;
                    Ok((got, want))
                }));
            }
        }
        (Kernel::Ttv, FormatKind::Coo, Gpu) => {
            cs.push(Cell::new("ttv/coo/gpu".into(), TTV_BUDGET, |cc| {
                let mut k = pasta_simt::GpuTtvCoo::new(&cc.x, &cc.v, cc.case.mode)?;
                launch(&p100(), &mut k);
                let want = ttv_coo(&cc.x, &cc.v, cc.case.mode, &Ctx::sequential())?.vals().to_vec();
                Ok((k.output().to_vec(), want))
            }));
        }
        (Kernel::Ttv, FormatKind::Fcoo, Gpu) => {
            cs.push(Cell::new("ttv/fcoo/gpu".into(), TTV_BUDGET, |cc| {
                // F-COO and the sequential COO kernel order fibers the same
                // way (both sort mode-last), so the streams align.
                let mut k = pasta_simt::GpuTtvFcoo::new(&cc.fx, &cc.v)?;
                launch(&p100(), &mut k);
                let want = ttv_coo(&cc.x, &cc.v, cc.case.mode, &Ctx::sequential())?.vals().to_vec();
                Ok((k.output().to_vec(), want))
            }));
        }

        // TTM.
        (Kernel::Ttm, FormatKind::Coo, Cpu) => {
            for t in POOLS {
                cs.push(Cell::new(format!("ttm/coo/cpu/t{t}"), TTM_BUDGET, move |cc| {
                    let got = ttm_coo(&cc.x, &cc.u, cc.case.mode, &cpu_ctx(t))?
                        .to_coo()
                        .to_dense(ORACLE_MAX_ENTRIES);
                    let want = ttm_dense(&cc.x, &cc.u, cc.case.mode)?.1;
                    Ok((got, want))
                }));
            }
            // TTM accumulates through axpy, which is lane-local under SIMD:
            // bit-identity (budget 0) against forced-scalar, by construction.
            cs.push(Cell::new("ttm/coo/cpu/simd/t1".into(), 0, |cc| {
                let ctx = Ctx::sequential();
                let got =
                    with_simd(SimdLevel::Avx2Fma, || ttm_coo(&cc.x, &cc.u, cc.case.mode, &ctx))?
                        .to_coo()
                        .to_dense(ORACLE_MAX_ENTRIES);
                let want =
                    with_simd(SimdLevel::Scalar, || ttm_coo(&cc.x, &cc.u, cc.case.mode, &ctx))?
                        .to_coo()
                        .to_dense(ORACLE_MAX_ENTRIES);
                Ok((got, want))
            }));
        }
        (Kernel::Ttm, FormatKind::Hicoo, Cpu) => {
            for t in POOLS {
                cs.push(Cell::new(format!("ttm/hicoo/cpu/t{t}"), TTM_BUDGET, move |cc| {
                    let got = ttm_hicoo(&cc.x, &cc.u, cc.case.mode, cc.case.block, &cpu_ctx(t))?
                        .to_scoo()?
                        .to_coo()
                        .to_dense(ORACLE_MAX_ENTRIES);
                    let want = ttm_dense(&cc.x, &cc.u, cc.case.mode)?.1;
                    Ok((got, want))
                }));
            }
        }
        (Kernel::Ttm, FormatKind::Scoo, Cpu) => {
            for t in POOLS {
                cs.push(Cell::new(format!("ttm/scoo/cpu/t{t}"), TTM_BUDGET, move |cc| {
                    if skip_reason(Kernel::Ttm, FormatKind::Scoo, Cpu, &cc.case).is_some() {
                        return Ok((Vec::new(), Vec::new()));
                    }
                    let got = ttm_scoo(&cc.sx, &cc.u, cc.case.mode, &cpu_ctx(t))?
                        .to_coo()
                        .to_dense(ORACLE_MAX_ENTRIES);
                    let want = ttm_dense(&cc.x, &cc.u, cc.case.mode)?.1;
                    Ok((got, want))
                }));
            }
        }
        (Kernel::Ttm, FormatKind::Coo, Gpu) => {
            cs.push(Cell::new("ttm/coo/gpu".into(), TTM_BUDGET, |cc| {
                let mut k = pasta_simt::GpuTtmCoo::new(&cc.x, &cc.u, cc.case.mode)?;
                launch(&p100(), &mut k);
                let want = ttm_coo(&cc.x, &cc.u, cc.case.mode, &Ctx::sequential())?.vals().to_vec();
                Ok((k.output().to_vec(), want))
            }));
        }

        // MTTKRP: sequential vs the dense oracle; owner-computes
        // bit-identical to sequential on the sorted tensor; privatized
        // ULP-bounded.
        (Kernel::Mttkrp, FormatKind::Coo, Cpu) => {
            cs.push(Cell::new("mttkrp/coo/cpu/seq/t1".into(), MTTKRP_SEQ_BUDGET, |cc| {
                let got = mttkrp_coo(&cc.x, &cc.factors, cc.case.mode, &Ctx::sequential())?;
                let want = mttkrp_dense(&cc.x, &cc.factors, cc.case.mode)?;
                Ok((got.as_slice().to_vec(), want.as_slice().to_vec()))
            }));
            for t in MTTKRP_POOLS {
                cs.push(Cell::new(format!("mttkrp/coo/cpu/owner/t{t}"), 0, move |cc| {
                    let ctx = cpu_ctx(t).with_mttkrp(StrategyChoice::Owner);
                    let got = mttkrp_coo(&cc.sorted_x, &cc.factors, cc.case.mode, &ctx)?;
                    let want =
                        mttkrp_coo(&cc.sorted_x, &cc.factors, cc.case.mode, &Ctx::sequential())?;
                    Ok((got.as_slice().to_vec(), want.as_slice().to_vec()))
                }));
                cs.push(Cell::new(
                    format!("mttkrp/coo/cpu/priv/t{t}"),
                    MTTKRP_PRIV_BUDGET,
                    move |cc| {
                        let ctx = cpu_ctx(t).with_mttkrp(StrategyChoice::Privatized);
                        let got = mttkrp_coo(&cc.x, &cc.factors, cc.case.mode, &ctx)?;
                        let want =
                            mttkrp_coo(&cc.x, &cc.factors, cc.case.mode, &Ctx::sequential())?;
                        Ok((got.as_slice().to_vec(), want.as_slice().to_vec()))
                    },
                ));
            }
            // The Khatri-Rao inner loops are mul_assign/add_assign —
            // lane-local under SIMD, so bit-identity (budget 0) holds.
            cs.push(Cell::new("mttkrp/coo/cpu/simd/t1".into(), 0, |cc| {
                let ctx = Ctx::sequential();
                let got = with_simd(SimdLevel::Avx2Fma, || {
                    mttkrp_coo(&cc.x, &cc.factors, cc.case.mode, &ctx)
                })?;
                let want = with_simd(SimdLevel::Scalar, || {
                    mttkrp_coo(&cc.x, &cc.factors, cc.case.mode, &ctx)
                })?;
                Ok((got.as_slice().to_vec(), want.as_slice().to_vec()))
            }));
        }
        (Kernel::Mttkrp, FormatKind::Hicoo, Cpu) => {
            for t in POOLS {
                cs.push(Cell::new(
                    format!("mttkrp/hicoo/cpu/t{t}"),
                    MTTKRP_HICOO_BUDGET,
                    move |cc| {
                        let got = mttkrp_hicoo(&cc.hx, &cc.factors, cc.case.mode, &cpu_ctx(t))?;
                        let want = mttkrp_dense(&cc.x, &cc.factors, cc.case.mode)?;
                        Ok((got.as_slice().to_vec(), want.as_slice().to_vec()))
                    },
                ));
            }
        }
        (Kernel::Mttkrp, FormatKind::Csf, Cpu) => {
            for t in POOLS {
                cs.push(Cell::new(format!("mttkrp/csf/cpu/t{t}"), MTTKRP_CSF_BUDGET, move |cc| {
                    // The tree is built with `case.mode` as the root, so
                    // the root-mode kernel computes that mode's MTTKRP.
                    let got = mttkrp_csf_root(&cc.cx_root, &cc.factors, &cpu_ctx(t))?;
                    let want = mttkrp_dense(&cc.x, &cc.factors, cc.case.mode)?;
                    Ok((got.as_slice().to_vec(), want.as_slice().to_vec()))
                }));
            }
        }
        (Kernel::Mttkrp, FormatKind::Coo, Gpu) => {
            cs.push(Cell::new("mttkrp/coo/gpu".into(), MTTKRP_GPU_BUDGET, |cc| {
                let mut k = pasta_simt::GpuMttkrpCoo::new(&cc.x, &cc.factors, cc.case.mode)?;
                launch(&p100(), &mut k);
                let want = mttkrp_dense(&cc.x, &cc.factors, cc.case.mode)?;
                Ok((k.output().as_slice().to_vec(), want.as_slice().to_vec()))
            }));
        }
        (Kernel::Mttkrp, FormatKind::Hicoo, Gpu) => {
            cs.push(Cell::new("mttkrp/hicoo/gpu".into(), MTTKRP_GPU_BUDGET, |cc| {
                let mut k = pasta_simt::GpuMttkrpHicoo::new(&cc.hx, &cc.factors, cc.case.mode)?;
                launch(&p100(), &mut k);
                let want = mttkrp_dense(&cc.x, &cc.factors, cc.case.mode)?;
                Ok((k.output().as_slice().to_vec(), want.as_slice().to_vec()))
            }));
        }

        // Anything else must carry a skips() entry — enforced by the
        // completeness test.
        _ => {}
    }
}

/// Contracts `mode` of a dense row-major array with a vector (one step of
/// the composed TTV-chain oracle). Removes `mode` from `dims`.
fn dense_ttv_step(dims: &mut Vec<usize>, data: &[f32], mode: usize, v: &[f32]) -> Vec<f32> {
    let dm = dims[mode];
    let inner: usize = dims[mode + 1..].iter().product();
    let outer: usize = dims[..mode].iter().product();
    let mut out = vec![0.0f32; outer * inner];
    for o in 0..outer {
        for (k, &vk) in v.iter().enumerate().take(dm) {
            let base = (o * dm + k) * inner;
            for i in 0..inner {
                out[o * inner + i] += data[base + i] * vk;
            }
        }
    }
    dims.remove(mode);
    out
}

/// One dense TTM step (`Y = X ×_mode U`, summing over the mode index —
/// the suite's TTM convention). Replaces `dims[mode]` with `U`'s columns.
fn dense_ttm_step(dims: &mut [usize], data: &[f32], mode: usize, u: &DenseMatrix<f32>) -> Vec<f32> {
    let dm = dims[mode];
    let r = u.cols();
    let inner: usize = dims[mode + 1..].iter().product();
    let outer: usize = dims[..mode].iter().product();
    let mut out = vec![0.0f32; outer * r * inner];
    for o in 0..outer {
        for k in 0..dm {
            let base = (o * dm + k) * inner;
            for rr in 0..r {
                let w = u.get(k, rr);
                let ob = (o * r + rr) * inner;
                for i in 0..inner {
                    out[ob + i] += data[base + i] * w;
                }
            }
        }
    }
    dims[mode] = r;
    out
}

/// Emits the conformance cells for one fused route: the fused executor
/// compared against a *composed* oracle that materializes every
/// intermediate (dense steps for the chains, the kernel-at-a-time sweep
/// for ALS).
fn push_fused_cells(cs: &mut Vec<Cell>, route: FusedRoute) {
    use BackendKind::Cpu;
    match (route.expr, route.format, route.backend) {
        (FusedExprKind::TtvChain, FormatKind::Coo, Cpu) => {
            for t in POOLS {
                cs.push(Cell::new(format!("{route}/t{t}"), FUSED_TTV_BUDGET, move |cc| {
                    let order = cc.case.order();
                    // Contract the trailing min(order−1, 2) modes in one
                    // fused pass.
                    let first = order.saturating_sub(2).max(1);
                    let contract: Vec<usize> = (first..order).collect();
                    let vecs: Vec<DenseVector<f32>> = contract
                        .iter()
                        .map(|&m| seeded_vector(cc.x.shape().dim(m) as usize, 31 + m as u64))
                        .collect();
                    let ctx = cpu_ctx(t);
                    let plan = FusedTtvPlan::new(&cc.x, &contract, &ctx)?;
                    let refs: Vec<&DenseVector<f32>> = vecs.iter().collect();
                    let got = plan.execute(&refs, &ctx)?.to_dense(ORACLE_MAX_ENTRIES);
                    let mut dims: Vec<usize> =
                        cc.x.shape().dims().iter().map(|&d| d as usize).collect();
                    let mut want = cc.x.to_dense(ORACLE_MAX_ENTRIES);
                    // Highest mode first so remaining indices stay valid.
                    for (j, &m) in contract.iter().enumerate().rev() {
                        want = dense_ttv_step(&mut dims, &want, m, vecs[j].as_slice());
                    }
                    Ok((got, want))
                }));
            }
        }
        (FusedExprKind::TtmChain, FormatKind::Coo, Cpu) => {
            for t in POOLS {
                cs.push(Cell::new(format!("{route}/t{t}"), FUSED_TTM_BUDGET, move |cc| {
                    let order = cc.case.order();
                    let skip = cc.case.mode;
                    let ctx = cpu_ctx(t);
                    let dense_x = cc.x.to_dense(ORACLE_MAX_ENTRIES);
                    let base_dims: Vec<usize> =
                        cc.x.shape().dims().iter().map(|&d| d as usize).collect();
                    // Skip-mode chain (the HOOI sweep body)…
                    let plan = FusedTtmChainPlan::new(&cc.x, skip, &ctx)?;
                    let mut got =
                        plan.execute(&cc.factors, &ctx)?.to_coo().to_dense(ORACLE_MAX_ENTRIES);
                    let mut dims = base_dims.clone();
                    let mut want = dense_x.clone();
                    for m in 0..order {
                        if m != skip {
                            want = dense_ttm_step(&mut dims, &want, m, &cc.factors[m]);
                        }
                    }
                    // …and the full contraction (the Tucker core).
                    let full = FusedTtmChainPlan::new(&cc.x, order, &ctx)?;
                    got.extend(full.execute_full(&cc.factors, &ctx)?);
                    let mut dims2 = base_dims;
                    let mut acc = dense_x;
                    for m in 0..order {
                        acc = dense_ttm_step(&mut dims2, &acc, m, &cc.factors[m]);
                    }
                    want.extend(acc);
                    Ok((got, want))
                }));
            }
        }
        (FusedExprKind::AlsSweep, fmt, Cpu) => {
            for t in POOLS {
                cs.push(Cell::new(format!("{route}/t{t}"), FUSED_ALS_BUDGET, move |cc| {
                    let ctx = cpu_ctx(t);
                    let r = cc.case.rank;
                    let fused = (|| -> Result<Vec<f32>> {
                        let mut ff = cc.factors.clone();
                        let mut lf = vec![1.0f32; r];
                        let mut plan = FusedAlsSweep::new(&cc.x, fmt, cc.case.block, &ff, &ctx)?;
                        plan.sweep(&mut ff, &mut lf)?;
                        let mut got: Vec<f32> =
                            ff.iter().flat_map(|f| f.as_slice().to_vec()).collect();
                        got.extend_from_slice(&lf);
                        Ok(got)
                    })();
                    // Composed kernel-at-a-time sweep: MTTKRP, recomputed
                    // Grams, Cholesky solve, normalize — per mode.
                    let composed = (|| -> Result<Vec<f32>> {
                        let mut fm = cc.factors.clone();
                        let mut lm = vec![1.0f32; r];
                        let hic = match fmt {
                            FormatKind::Hicoo => Some(HiCooTensor::from_coo(&cc.x, cc.case.block)?),
                            _ => None,
                        };
                        for n in 0..cc.case.order() {
                            let m_out = match &hic {
                                Some(h) => mttkrp_hicoo(h, &fm, n, &ctx)?,
                                None => mttkrp_coo(&cc.x, &fm, n, &ctx)?,
                            };
                            let mut v: Option<DenseMatrix<f32>> = None;
                            for (m, f) in fm.iter().enumerate() {
                                if m == n {
                                    continue;
                                }
                                let g = gram(f);
                                v = Some(match v {
                                    Some(acc) => hadamard(&acc, &g),
                                    None => g,
                                });
                            }
                            let v = v.expect("order >= 2");
                            let ch = Cholesky::factor(&v, 1e-10f32).ok_or_else(|| {
                                pasta_core::Error::OperandMismatch {
                                    what: "gram Hadamard product not positive definite".into(),
                                }
                            })?;
                            let mut a = m_out;
                            ch.solve_rows(&mut a);
                            let norms = normalize_columns(&mut a);
                            for (l, nn) in lm.iter_mut().zip(&norms) {
                                *l = if *nn == 0.0 { 0.0 } else { *nn };
                            }
                            fm[n] = a;
                        }
                        let mut want: Vec<f32> =
                            fm.iter().flat_map(|f| f.as_slice().to_vec()).collect();
                        want.extend_from_slice(&lm);
                        Ok(want)
                    })();
                    match (fused, composed) {
                        (Ok(got), Ok(want)) => Ok((got, want)),
                        // Degenerate cases (e.g. rank > nnz) make the Gram
                        // Hadamard singular; the contract is that both
                        // routes reject them identically.
                        (Err(_), Err(_)) => Ok((Vec::new(), Vec::new())),
                        (Ok(_), Err(e)) | (Err(e), Ok(_)) => Err(e),
                    }
                }));
            }
        }
        _ => {}
    }
}

/// Flattens any [`ExprOut`] into the dense comparison space the oracles
/// live in (sparse variants through the dense image, dense variants as
/// their row-major payload).
fn expr_out_dense(out: ExprOut<f32>) -> Vec<f32> {
    match out {
        ExprOut::Coo(t) => t.to_dense(ORACLE_MAX_ENTRIES),
        ExprOut::Semi(s) => s.to_coo().to_dense(ORACLE_MAX_ENTRIES),
        ExprOut::Dense { vals, .. } => vals,
        ExprOut::Matrix(m) => m.as_slice().to_vec(),
    }
}

/// Emits the conformance cells for one expression-graph route: a graph is
/// built, lowered through the planner, executed, and compared against the
/// same expression composed kernel-at-a-time (or against the dense step
/// oracles), so the cells pin the whole lower-then-execute pipeline
/// rather than any single kernel.
#[allow(clippy::too_many_lines)]
fn push_expr_cells(cs: &mut Vec<Cell>, route: ExprRoute) {
    use BackendKind::Cpu;
    match (route.label, route.format, route.backend) {
        // A mixed TEW→TTV(→TTM) chain lowered as one graph vs the same
        // steps as separate kernel calls with materialized intermediates.
        ("chain", FormatKind::Coo, Cpu) => {
            for t in POOLS {
                cs.push(Cell::new(format!("{route}/t{t}"), FUSED_TTM_BUDGET, move |cc| {
                    let order = cc.case.order();
                    let last = order - 1;
                    let ctx = cpu_ctx(t);
                    let v =
                        seeded_vector::<f32>(cc.x.shape().dim(last) as usize, cc.case.seed ^ 0xE1);
                    let rank = cc.case.rank.max(1);
                    let u = seeded_matrix::<f32>(
                        cc.x.shape().dim(0) as usize,
                        rank,
                        cc.case.seed ^ 0xE2,
                    );
                    let mut g = ExprGraph::new();
                    let leaf = g.leaf(&cc.x);
                    let e = g.tew(leaf, EwOp::Mul, cc.y.clone())?;
                    let mut root = g.ttv(e, last, VecOperand::Owned(v.clone()))?;
                    if order >= 3 {
                        root = g.ttm(root, 0, MatOperand::Owned(u.clone()))?;
                    }
                    let plan = lower(&g, root, &ctx)?;
                    let got = expr_out_dense(plan.execute(&Bindings::none())?);
                    let step1 = tew_coo_same_pattern(EwOp::Mul, &cc.x, &cc.y, &ctx)?;
                    let step2 = ttv_coo(&step1, &v, last, &ctx)?;
                    let want = if order >= 3 {
                        ttm_coo(&step2, &u, 0, &ctx)?.to_coo().to_dense(ORACLE_MAX_ENTRIES)
                    } else {
                        step2.to_dense(ORACLE_MAX_ENTRIES)
                    };
                    Ok((got, want))
                }));
            }
        }
        // Multi-mode TTV product through ttv_multi vs the composed dense
        // TTV step oracle (the fused-ttvchain comparison space).
        ("ttv", FormatKind::Coo, Cpu) => {
            for t in POOLS {
                cs.push(Cell::new(format!("{route}/t{t}"), FUSED_TTV_BUDGET, move |cc| {
                    let order = cc.case.order();
                    let first = order.saturating_sub(2).max(1);
                    let contract: Vec<usize> = (first..order).collect();
                    let vecs: Vec<DenseVector<f32>> = contract
                        .iter()
                        .map(|&m| seeded_vector(cc.x.shape().dim(m) as usize, 31 + m as u64))
                        .collect();
                    let ctx = cpu_ctx(t);
                    let mut g = ExprGraph::new();
                    let leaf = g.leaf(&cc.x);
                    let ops = vecs.iter().cloned().map(VecOperand::Owned).collect();
                    let root = g.ttv_multi(leaf, &contract, ops)?;
                    let plan = lower(&g, root, &ctx)?;
                    let got = expr_out_dense(plan.execute(&Bindings::none())?);
                    let mut dims: Vec<usize> =
                        cc.x.shape().dims().iter().map(|&d| d as usize).collect();
                    let mut want = cc.x.to_dense(ORACLE_MAX_ENTRIES);
                    for (j, &m) in contract.iter().enumerate().rev() {
                        want = dense_ttv_step(&mut dims, &want, m, vecs[j].as_slice());
                    }
                    Ok((got, want))
                }));
            }
        }
        // Full contraction to a dense core (ttm_all_but with no skip) vs
        // the composed dense TTM step oracle.
        ("contract", FormatKind::Coo, Cpu) => {
            for t in POOLS {
                cs.push(Cell::new(format!("{route}/t{t}"), FUSED_TTM_BUDGET, move |cc| {
                    let order = cc.case.order();
                    let ctx = cpu_ctx(t);
                    let mut g = ExprGraph::new();
                    let leaf = g.leaf(&cc.x);
                    let mats: Vec<MatOperand<f32>> =
                        cc.factors.iter().map(|f| MatOperand::Owned(f.clone())).collect();
                    let root = g.ttm_all_but(leaf, order, mats)?;
                    let plan = lower(&g, root, &ctx)?;
                    let got = expr_out_dense(plan.execute(&Bindings::none())?);
                    let mut dims: Vec<usize> =
                        cc.x.shape().dims().iter().map(|&d| d as usize).collect();
                    let mut want = cc.x.to_dense(ORACLE_MAX_ENTRIES);
                    for m in 0..order {
                        want = dense_ttm_step(&mut dims, &want, m, &cc.factors[m]);
                    }
                    Ok((got, want))
                }));
            }
        }
        // The planner-cached MTTKRP head, rebound per mode, vs the
        // sequential kernel (the head may pick a parallel strategy, so it
        // carries the privatized-reduction budget).
        ("mttkrp", FormatKind::Coo, Cpu) => {
            for t in POOLS {
                cs.push(Cell::new(format!("{route}/t{t}"), MTTKRP_PRIV_BUDGET, move |cc| {
                    let ctx = cpu_ctx(t);
                    let mut g = ExprGraph::new();
                    let leaf = g.leaf(&cc.x);
                    let root = g.mttkrp(leaf, cc.case.rank, FormatKind::Coo, cc.case.block)?;
                    let plan = lower(&g, root, &ctx)?;
                    let (mut got, mut want) = (Vec::new(), Vec::new());
                    // One lowering serves every mode — the rebinding
                    // contract the ALS driver relies on.
                    for n in 0..cc.case.order() {
                        let out = match plan.execute(&Bindings::mttkrp(&cc.factors, n))? {
                            ExprOut::Matrix(m) => m,
                            _ => {
                                return Err(pasta_core::Error::OperandMismatch {
                                    what: "mttkrp head did not produce a matrix".into(),
                                })
                            }
                        };
                        got.extend_from_slice(out.as_slice());
                        let seq = mttkrp_coo(&cc.x, &cc.factors, n, &Ctx::sequential())?;
                        want.extend_from_slice(seq.as_slice());
                    }
                    Ok((got, want))
                }));
            }
        }
        _ => {}
    }
}

/// Submits each spec to a fresh sharded, cache-enabled server twice (the
/// second pass answers from the conversion cache) and pairs every served
/// response against [`direct_eval`] on the same tensor, so one cell pins
/// both the cold and the cache-warm dispatch path.
fn serve_pair(cc: &CaseCtx, specs: &[OpSpec]) -> Result<(Vec<f32>, Vec<f32>)> {
    let mut catalog = ServeCatalog::new();
    catalog.insert(0, cc.case.label.clone(), cc.x.clone());
    let cfg = ServerConfig { threads: 2, shards: 3, shard_nnz_threshold: 1, cache_bytes: 1 << 20 };
    let mut server = Server::new(catalog, cfg);
    let (mut got, mut want) = (Vec::new(), Vec::new());
    for &op in specs {
        let served = server
            .submit([ServeRequest { tensor: 0, op }])
            .and_then(|cold| Ok((cold, server.submit([ServeRequest { tensor: 0, op }])?)));
        let direct = direct_eval(&cc.x, &op);
        match (served, direct) {
            (Ok((cold, warm)), Ok(d)) => {
                for resp in cold.into_iter().chain(warm) {
                    got.extend(resp.values);
                    want.extend_from_slice(&d);
                }
            }
            // Degenerate configurations (e.g. rank > nnz decompositions)
            // must be rejected identically on both sides.
            (Err(_), Err(_)) => {}
            (Ok(_), Err(e)) | (Err(e), Ok(_)) => return Err(e),
        }
    }
    Ok((got, want))
}

/// Emits one differential cell per serving-layer route: the served
/// response against [`direct_eval`]. Budgets mirror the underlying
/// kernels — element-wise lanes, owner-computes MTTKRP and the
/// sequential decomposition jobs are bit-identical contracts, while
/// TTV/TTM reuse the single-kernel reduction budgets.
fn push_serve_cells(cs: &mut Vec<Cell>, route: &ServeRoute) {
    let id = format!("serve-{}/{}/cpu", route.op, route.format);
    match (route.op, route.format) {
        ("tew", FormatKind::Coo) => cs.push(Cell::new(id, 0, |cc| {
            let specs: Vec<OpSpec> =
                EwOp::ALL.into_iter().map(|op| OpSpec::Tew { op, seed: cc.case.seed }).collect();
            serve_pair(cc, &specs)
        })),
        ("ts", FormatKind::Coo) => cs.push(Cell::new(id, 0, |cc| {
            let specs: Vec<OpSpec> =
                TsOp::ALL.into_iter().map(|op| OpSpec::Ts { op, scalar: TS_SCALAR }).collect();
            serve_pair(cc, &specs)
        })),
        ("ttv", FormatKind::Csf) => cs.push(Cell::new(id, TTV_BUDGET, |cc| {
            serve_pair(cc, &[OpSpec::Ttv { mode: cc.case.mode, seed: cc.case.seed }])
        })),
        ("ttm", FormatKind::Coo) => cs.push(Cell::new(id, TTM_BUDGET, |cc| {
            let spec =
                OpSpec::Ttm { mode: cc.case.mode, rank: cc.case.rank.max(1), seed: cc.case.seed };
            serve_pair(cc, &[spec])
        })),
        ("mttkrp", FormatKind::Coo) => cs.push(Cell::new(id, 0, |cc| {
            let spec = OpSpec::Mttkrp {
                mode: cc.case.mode,
                rank: cc.case.rank.max(1),
                seed: cc.case.seed,
                route: MttkrpRoute::Coo,
            };
            serve_pair(cc, &[spec])
        })),
        ("mttkrp", FormatKind::Hicoo) => cs.push(Cell::new(id, 0, |cc| {
            let spec = OpSpec::Mttkrp {
                mode: cc.case.mode,
                rank: cc.case.rank.max(1),
                seed: cc.case.seed,
                route: MttkrpRoute::Hicoo(cc.case.block),
            };
            serve_pair(cc, &[spec])
        })),
        ("cpd", FormatKind::Coo) => cs.push(Cell::new(id, 0, |cc| {
            serve_pair(
                cc,
                &[OpSpec::Cpd { rank: cc.case.rank.max(1), sweeps: 2, seed: cc.case.seed }],
            )
        })),
        ("tucker", FormatKind::Coo) => cs.push(Cell::new(id, 0, |cc| {
            let spec = OpSpec::Tucker { rank: cc.case.rank.max(1), sweeps: 1, seed: cc.case.seed };
            serve_pair(cc, &[spec])
        })),
        // Composite expression chains: the served (lowered, fused,
        // cached) plan against direct kernel-at-a-time evaluation. The
        // budget matches the TTM-bearing fused-chain cells.
        ("expr", FormatKind::Coo) => cs.push(Cell::new(id, FUSED_TTM_BUDGET, |cc| {
            let mut steps = [None; 4];
            steps[0] = Some(ExprStep::Ttv { mode: cc.case.mode });
            steps[1] = Some(ExprStep::Ts { op: TsOp::Mul, scalar: TS_SCALAR });
            if cc.case.order() >= 3 {
                steps[2] = Some(ExprStep::Ttm { mode: 0, rank: cc.case.rank.max(1) });
            }
            serve_pair(cc, &[OpSpec::Expr { spec: ExprSpec { steps, seed: cc.case.seed } }])
        })),
        _ => {}
    }
}

/// A deliberate output perturbation, used by `selftest` (and tests) to
/// prove the harness catches, shrinks and replays a bug. The perturbation
/// is applied to the matching cell's first output value, far outside any
/// budget: `v + max(0.5, 0.01·|v|)`.
#[derive(Debug, Clone)]
pub struct FaultSpec {
    /// The id of the cell whose output is perturbed.
    pub cell: String,
}

/// The outcome of one (cell, case) evaluation.
#[derive(Debug, Clone)]
pub enum CellOutcome {
    /// Within budget; carries the worst ULP distance observed.
    Pass(u64),
    /// Failure: budget exceeded, kernel error, panic, or length mismatch.
    Fail {
        /// Worst ULP distance, when the outputs were comparable.
        worst: Option<u64>,
        /// Human-readable reason.
        message: String,
    },
}

/// Evaluates one cell on one case, catching panics.
pub fn eval_cell(cell: &Cell, case: &Case, fault: Option<&FaultSpec>) -> CellOutcome {
    let cc = match CaseCtx::new(case) {
        Ok(cc) => cc,
        Err(e) => return CellOutcome::Fail { worst: None, message: format!("case setup: {e}") },
    };
    let run = catch_unwind(AssertUnwindSafe(|| cell.run(&cc)));
    let (mut got, want) = match run {
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(ToString::to_string)
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".into());
            return CellOutcome::Fail { worst: None, message: format!("panicked: {msg}") };
        }
        Ok(Err(e)) => {
            return CellOutcome::Fail { worst: None, message: format!("kernel error: {e}") }
        }
        Ok(Ok(pair)) => pair,
    };
    if let Some(f) = fault {
        if f.cell == cell.id {
            if let Some(v) = got.first_mut() {
                *v += (0.01 * v.abs()).max(0.5);
            }
        }
    }
    match worst_ulp(&got, &want) {
        None => CellOutcome::Fail {
            worst: None,
            message: format!("output length {} vs reference {}", got.len(), want.len()),
        },
        Some(w) if w > cell.budget => CellOutcome::Fail {
            worst: Some(w),
            message: format!("worst ULP {w} exceeds budget {}", cell.budget),
        },
        Some(w) => CellOutcome::Pass(w),
    }
}

/// Shrinks a failing case for `cell`: entries via ddmin, then dimensions to
/// the minimal covering extents, then rank and mode toward their minima —
/// keeping the failure alive at every step.
pub fn shrink_case(cell: &Cell, case: &Case, fault: Option<&FaultSpec>) -> Case {
    let fails = |c: &Case| matches!(eval_cell(cell, c, fault), CellOutcome::Fail { .. });

    let min_entries = proptest::shrink::ddmin(&case.entries, |subset| {
        let mut c = case.clone();
        c.entries = subset.to_vec();
        fails(&c)
    });
    let mut cur = case.clone();
    cur.entries = min_entries;

    for m in 0..cur.order() {
        let needed = cur.entries.iter().map(|(c, _)| c[m] + 1).max().unwrap_or(1);
        if needed < cur.dims[m] {
            let mut c = cur.clone();
            c.dims[m] = needed;
            if fails(&c) {
                cur = c;
            }
        }
    }

    let best_rank = proptest::shrink::shrink_int(1, cur.rank as u64, |r| {
        let mut c = cur.clone();
        c.rank = r as usize;
        fails(&c)
    }) as usize;
    if best_rank < cur.rank {
        let mut c = cur.clone();
        c.rank = best_rank;
        if fails(&c) {
            cur = c;
        }
    }

    if cur.mode != 0 {
        let mut c = cur.clone();
        c.mode = 0;
        if fails(&c) {
            cur = c;
        }
    }

    cur.label = format!("shrunk:{}", case.label);
    cur
}

/// A cell's failure, with the minimized reproduction case.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Label of the case that first failed.
    pub case_label: String,
    /// Why it failed.
    pub message: String,
    /// The shrunk case (serialize with [`crate::render_case`]).
    pub shrunk: Case,
}

/// Per-cell result over a whole corpus.
#[derive(Debug, Clone)]
pub struct CellReport {
    /// Cell identifier.
    pub id: String,
    /// The cell's ULP budget.
    pub budget: u64,
    /// Cases evaluated (stops at the first failure).
    pub cases: usize,
    /// Worst ULP distance across passing cases.
    pub worst: u64,
    /// Label of the case that produced `worst`.
    pub worst_case: String,
    /// Set if the cell failed.
    pub failure: Option<Failure>,
}

/// Runs every cell over every case; the first failure per cell is shrunk
/// and recorded, and later cases for that cell are skipped.
pub fn run_matrix(cases: &[Case], cells: &[Cell], fault: Option<&FaultSpec>) -> Vec<CellReport> {
    cells
        .iter()
        .map(|cell| {
            let mut report = CellReport {
                id: cell.id.clone(),
                budget: cell.budget,
                cases: 0,
                worst: 0,
                worst_case: String::new(),
                failure: None,
            };
            for case in cases {
                report.cases += 1;
                match eval_cell(cell, case, fault) {
                    CellOutcome::Pass(w) => {
                        if w >= report.worst {
                            report.worst = w;
                            report.worst_case = case.label.clone();
                        }
                    }
                    CellOutcome::Fail { message, .. } => {
                        let shrunk = shrink_case(cell, case, fault);
                        report.failure =
                            Some(Failure { case_label: case.label.clone(), message, shrunk });
                        break;
                    }
                }
            }
            report
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cases::{generate, Tier};

    #[test]
    fn registry_covers_the_matrix() {
        let cs = cells();
        assert!(cs.len() >= 60, "{} cells", cs.len());
        let ids: Vec<&str> = cs.iter().map(|c| c.id.as_str()).collect();
        for fmt in ["coo", "scoo", "hicoo", "ghicoo", "shicoo", "csf", "fcoo"] {
            assert!(ids.contains(&format!("tew/{fmt}/cpu/t1").as_str()), "tew {fmt}");
            assert!(ids.contains(&format!("ts/{fmt}/gpu").as_str()), "ts gpu {fmt}");
        }
        assert!(ids.contains(&"ttv/csf/cpu/t1"));
        assert!(ids.contains(&"ttv/fcoo/gpu"));
        assert!(ids.contains(&"mttkrp/csf/cpu/t4"));
        assert!(ids.contains(&"mttkrp/coo/cpu/owner/t2"));
        assert!(ids.contains(&"mttkrp/hicoo/gpu"));
        assert!(ids.contains(&"fused-ttvchain/coo/cpu/t1"));
        assert!(ids.contains(&"fused-ttmchain/coo/cpu/t4"));
        assert!(ids.contains(&"fused-alssweep/hicoo/cpu/t4"));
        assert!(ids.contains(&"expr-chain/coo/cpu/t1"));
        assert!(ids.contains(&"expr-contract/coo/cpu/t4"));
        assert!(ids.contains(&"expr-mttkrp/coo/cpu/t1"));
        assert!(ids.contains(&"serve-tew/coo/cpu"));
        assert!(ids.contains(&"serve-mttkrp/hicoo/cpu"));
        assert!(ids.contains(&"serve-cpd/coo/cpu"));
        assert!(ids.contains(&"serve-expr/coo/cpu"));
        // Ids are unique.
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ids.len());
        // Element-wise cells are all bit-identical contracts, served or
        // direct.
        for c in &cs {
            if c.id.starts_with("tew/")
                || c.id.starts_with("ts/")
                || c.id.starts_with("serve-tew/")
                || c.id.starts_with("serve-ts/")
            {
                assert_eq!(c.budget, 0, "{}", c.id);
            }
        }
    }

    #[test]
    fn every_registered_combo_has_cells_or_skip() {
        let ids: Vec<String> = cells().into_iter().map(|c| c.id).collect();
        let sk = skips();
        for combo in registry() {
            let prefix = combo.to_string();
            let covered =
                ids.iter().any(|id| *id == prefix || id.starts_with(&format!("{prefix}/")));
            let excused = sk.iter().any(|s| {
                s.kernel == combo.kernel
                    && s.format == combo.format
                    && s.backend == combo.backend
                    && s.cases.is_none()
            });
            assert!(
                covered || excused,
                "registered combo {prefix} has no conformance cell and no skip entry"
            );
        }
    }

    #[test]
    fn every_cell_maps_to_a_registered_combo() {
        let reg: Vec<String> = registry().iter().map(ToString::to_string).collect();
        let fused_reg: Vec<String> = fused_registry().iter().map(ToString::to_string).collect();
        let expr_reg: Vec<String> = expr_registry().iter().map(ToString::to_string).collect();
        for cell in cells() {
            let parts: Vec<&str> = cell.id.split('/').collect();
            let (k, f, b) = (parts[0], parts[1], parts[2]);
            // Serve cells map to the serving-layer route registry.
            if let Some(op) = k.strip_prefix("serve-") {
                assert!(
                    serve_registry()
                        .iter()
                        .any(|r| r.op == op && r.format.to_string() == f && b == "cpu"),
                    "cell {} maps to unregistered serve route serve-{op}/{f}/{b}",
                    cell.id
                );
                continue;
            }
            // Fused cells map to the fused-route registry, not the
            // single-kernel combo registry.
            if let Some(expr) = k.strip_prefix("fused-") {
                let route = format!("fused-{expr}/{f}/{b}");
                assert!(
                    fused_reg.contains(&route),
                    "cell {} maps to unregistered fused route {route}",
                    cell.id
                );
                continue;
            }
            // Expression-graph cells map to the expr-route registry.
            if k.starts_with("expr-") {
                let route = format!("{k}/{f}/{b}");
                assert!(
                    expr_reg.contains(&route),
                    "cell {} maps to unregistered expr route {route}",
                    cell.id
                );
                continue;
            }
            // GPU element-wise cells for non-COO formats run the registered
            // COO value loop over that format's value array (the paper's
            // shared-value-loop observation), so they map to the COO combo.
            let combo = if (k == "tew" || k == "ts") && b == "gpu" {
                format!("{k}/coo/gpu")
            } else {
                format!("{k}/{f}/{b}")
            };
            assert!(reg.contains(&combo), "cell {} maps to unregistered combo {combo}", cell.id);
        }
    }

    #[test]
    fn every_fused_route_has_cells() {
        let ids: Vec<String> = cells().into_iter().map(|c| c.id).collect();
        for route in fused_registry() {
            let prefix = route.to_string();
            assert!(
                ids.iter().any(|id| id.starts_with(&format!("{prefix}/"))),
                "fused route {prefix} has no conformance cell"
            );
        }
    }

    #[test]
    fn every_expr_route_has_cells() {
        let ids: Vec<String> = cells().into_iter().map(|c| c.id).collect();
        for route in expr_registry() {
            let prefix = route.to_string();
            assert!(
                ids.iter().any(|id| id.starts_with(&format!("{prefix}/"))),
                "expr route {prefix} has no conformance cell"
            );
        }
    }

    #[test]
    fn every_serve_route_has_cells() {
        let ids: Vec<String> = cells().into_iter().map(|c| c.id).collect();
        for route in serve_registry() {
            let id = format!("serve-{}/{}/cpu", route.op, route.format);
            assert!(ids.contains(&id), "serve route {id} has no conformance cell");
        }
    }

    #[test]
    fn skip_entries_name_registered_combos() {
        let reg = registry();
        for s in skips() {
            assert!(
                reg.iter().any(|c| c.kernel == s.kernel
                    && c.format == s.format
                    && c.backend == s.backend),
                "skip entry for unregistered combo {}/{}/{}",
                s.kernel.to_string().to_lowercase(),
                s.format,
                s.backend.label(),
            );
            assert!(!s.reason.is_empty());
        }
        // The sCOO TTM structural hole is case-scoped, and its predicate
        // matches exactly the unrepresentable configuration.
        let hole = skip_reason(
            Kernel::Ttm,
            FormatKind::Scoo,
            BackendKind::Cpu,
            &Case {
                label: "order2".into(),
                dims: vec![3, 4],
                entries: vec![(vec![0, 0], 1.0)],
                mode: 0,
                rank: 2,
                block: 2,
                seed: 1,
            },
        );
        assert!(hole.is_some());
    }

    #[test]
    fn one_cell_passes_one_case() {
        let case = &generate(Tier::Quick, 11)[1];
        let cs = cells();
        let tew = cs.iter().find(|c| c.id == "tew/coo/cpu/t1").unwrap();
        assert!(matches!(eval_cell(tew, case, None), CellOutcome::Pass(0)));
    }

    #[test]
    fn fault_injection_fails_shrinks_and_clears() {
        let corpus = generate(Tier::Quick, 5);
        let cs = cells();
        let cell = cs.iter().find(|c| c.id == "ts/coo/cpu/t1").unwrap();
        let fault = FaultSpec { cell: cell.id.clone() };
        let case = &corpus[1];
        assert!(matches!(eval_cell(cell, case, Some(&fault)), CellOutcome::Fail { .. }));
        let shrunk = shrink_case(cell, case, Some(&fault));
        // The perturbation hits regardless of content, so the minimum is
        // the empty pattern over minimal dims.
        assert!(shrunk.entries.is_empty());
        assert!(shrunk.dims.iter().all(|&d| d == 1));
        assert!(matches!(eval_cell(cell, &shrunk, Some(&fault)), CellOutcome::Fail { .. }));
        // Without the fault the shrunk case passes: the bug, not the case.
        assert!(matches!(eval_cell(cell, &shrunk, None), CellOutcome::Pass(_)));
    }
}
