//! # pasta-kernels — the five PASTA sparse tensor kernels
//!
//! Reference implementations of the benchmark suite's kernels (Sections II
//! and III of the paper), in COO and HiCOO formats, sequential and parallel:
//!
//! | Kernel | COO | HiCOO | Output |
//! |--------|-----|-------|--------|
//! | TEW    | [`tew_coo`] | [`tew_hicoo`] | same pattern as inputs |
//! | TS     | [`ts_coo`] | [`ts_hicoo`] | same pattern as input |
//! | TTV    | [`ttv_coo`] / [`TtvCooPlan`] | [`ttv_hicoo`] / [`TtvHicooPlan`] | sparse, order N−1 |
//! | TTM    | [`ttm_coo`] / [`TtmCooPlan`] | [`ttm_hicoo`] / [`TtmHicooPlan`] | semi-sparse (sCOO / sHiCOO) |
//! | MTTKRP | [`mttkrp_coo`] | [`mttkrp_hicoo`] | dense `I_n × R` matrix |
//!
//! The element-wise kernels also cover the remaining formats —
//! [`tew_scoo`] / [`tew_ghicoo`] / [`tew_shicoo`] and [`ts_scoo`] /
//! [`ts_ghicoo`] / [`ts_shicoo`] — reusing the input's structure and
//! rewriting only the value array.
//!
//! All kernels operate directly on non-zero entries — no tensor-matrix
//! transformation — and support arbitrary tensor orders. The plan types
//! separate pre-processing (sorting, fiber discovery, output allocation)
//! from the timed value computation, matching the paper's measurement
//! methodology. The [`analysis`] module encodes Table I's flop/byte model.
//!
//! # Examples
//!
//! ```
//! use pasta_core::{CooTensor, DenseVector, Shape};
//! use pasta_kernels::{ttv_coo, Ctx};
//!
//! # fn main() -> Result<(), pasta_core::Error> {
//! let x = CooTensor::from_entries(
//!     Shape::new(vec![2, 2, 2]),
//!     vec![(vec![0, 1, 0], 1.0_f32), (vec![0, 1, 1], 2.0)],
//! )?;
//! let v = DenseVector::from_vec(vec![3.0, 4.0]);
//! let y = ttv_coo(&x, &v, 2, &Ctx::sequential())?;
//! assert_eq!(y.get(&[0, 1]), Some(11.0));
//! # Ok(())
//! # }
//! ```

// Dense/kernel code indexes several arrays in lockstep; iterator
// rewrites of those loops obscure the math.
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analysis;
pub mod csf;
pub mod ctx;
pub mod dense_ref;
pub mod fcoo;
pub mod microkernel;
pub mod mttkrp;
pub mod ops;
pub mod sched;
pub mod tew;
pub mod ts;
pub mod ttm;
pub mod ttv;

pub use analysis::{
    choose_mttkrp_strategy, kernel_cost, resort_pays_off, CostParams, Kernel, KernelCost,
    MttkrpSchedParams, MttkrpStrategy,
};
pub use csf::{mttkrp_csf_root, ttv_csf_leaf};
pub use ctx::{mttkrp_counters, CounterSnapshot, Ctx, MttkrpCounters, StrategyChoice};
pub use fcoo::ttv_fcoo;
pub use mttkrp::{
    mttkrp_coo, mttkrp_coo_traced, mttkrp_hicoo, mttkrp_hicoo_traced, MttkrpCooPlan, MttkrpRun,
};
pub use ops::{EwOp, TsOp};
pub use tew::{
    tew_coo, tew_coo_general, tew_coo_same_pattern, tew_ghicoo, tew_hicoo, tew_scoo, tew_shicoo,
    tew_values_into,
};
pub use ts::{ts_coo, ts_ghicoo, ts_hicoo, ts_scoo, ts_shicoo, ts_values_into};
pub use ttm::{ttm_coo, ttm_hicoo, ttm_scoo, TtmCooPlan, TtmHicooPlan};
pub use ttv::{ttv_coo, ttv_hicoo, TtvCooPlan, TtvHicooPlan};
