//! # pasta-kernels — the five PASTA sparse tensor kernels
//!
//! Reference implementations of the benchmark suite's kernels (Sections II
//! and III of the paper), written once against the `pasta-core` format-
//! access traits and instantiated per format:
//!
//! | Kernel | CPU formats | Output |
//! |--------|-------------|--------|
//! | TEW    | all seven via [`tew_any`] (wrappers [`tew_coo`], [`tew_hicoo`], [`tew_ghicoo`], [`tew_scoo`], [`tew_shicoo`], [`tew_csf`], [`tew_fcoo`]) | same structure as inputs |
//! | TS     | all seven via [`ts_any`] (wrappers [`ts_coo`] … [`ts_fcoo`]) | same structure as input |
//! | TTV    | [`ttv_coo`] / [`TtvCooPlan`], [`ttv_hicoo`] / [`TtvHicooPlan`], [`ttv_csf_leaf`] / [`CsfTtvPlan`], [`ttv_fcoo`] | sparse, order N−1 |
//! | TTM    | [`ttm_coo`] / [`TtmCooPlan`], [`ttm_hicoo`] / [`TtmHicooPlan`], [`ttm_scoo`] | semi-sparse (sCOO / sHiCOO) |
//! | MTTKRP | [`mttkrp_coo`], [`mttkrp_hicoo`], [`mttkrp_csf_root`] | dense `I_n × R` matrix |
//!
//! Element-wise kernels run on any `FormatAccess` implementor: structure is
//! reused, only the value array is rewritten. Fiber-contracting kernels
//! (TTV, TTM) share the generic executors in [`fibers`], parametrized by a
//! `FiberCursor` — COO sorted fibers, HiCOO blocks and CSF sub-trees all
//! drive the same monomorphized inner loop, so per-format results stay
//! bit-identical to the pre-refactor kernels. F-COO TTV keeps its own
//! segmented-reduction formulation in [`fcoo`].
//!
//! All kernels operate directly on non-zero entries — no tensor-matrix
//! transformation — and support arbitrary tensor orders. The plan types
//! separate pre-processing (sorting, fiber discovery, output allocation)
//! from the timed value computation, matching the paper's measurement
//! methodology. The [`analysis`] module encodes Table I's flop/byte model,
//! and [`pipeline`] holds the execution context, the format×kernel×backend
//! [`registry`], and the [`KernelPlan`] plan→execute dispatcher.
//!
//! # Examples
//!
//! ```
//! use pasta_core::{CooTensor, DenseVector, Shape};
//! use pasta_kernels::{ttv_coo, Ctx};
//!
//! # fn main() -> Result<(), pasta_core::Error> {
//! let x = CooTensor::from_entries(
//!     Shape::new(vec![2, 2, 2]),
//!     vec![(vec![0, 1, 0], 1.0_f32), (vec![0, 1, 1], 2.0)],
//! )?;
//! let v = DenseVector::from_vec(vec![3.0, 4.0]);
//! let y = ttv_coo(&x, &v, 2, &Ctx::sequential())?;
//! assert_eq!(y.get(&[0, 1]), Some(11.0));
//! # Ok(())
//! # }
//! ```

// Dense/kernel code indexes several arrays in lockstep; iterator
// rewrites of those loops obscure the math.
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analysis;
pub mod csf;
pub mod dense_ref;
pub mod expr;
pub mod fcoo;
pub mod fibers;
pub mod fused;
pub mod microkernel;
pub mod mttkrp;
pub mod pipeline;
pub mod tew;
pub mod ts;
pub mod ttm;
pub mod ttv;
pub mod tune;
pub mod workspace;

pub use analysis::{
    choose_fusion, choose_mttkrp_strategy, choose_mttkrp_strategy_with, host_peaks, kernel_cost,
    resort_pays_off, roofline_gap, roofline_report, CostParams, FuseDecision, FusionParams, Kernel,
    KernelCost, MttkrpSchedParams, MttkrpStrategy, RooflineGap, RooflineSample,
    DEFAULT_DENSE_THRESHOLD, FUSE_WORKSPACE_FACTOR,
};
pub use csf::{mttkrp_csf_root, ttv_csf_leaf, CsfTtvPlan};
pub use expr::{
    expr_registry, lower, Bindings, ContractionPlan, ExprGraph, ExprId, ExprOut, ExprPlan,
    ExprRoute, LeafTensor, MatOperand, VecOperand,
};
pub use fcoo::ttv_fcoo;
pub use fused::{FusedAlsSweep, FusedTtmChainPlan, FusedTtvPlan};
pub use microkernel::{force_simd, prefetch_read, simd_level, SimdLevel};
pub use mttkrp::{
    mttkrp_coo, mttkrp_coo_traced, mttkrp_hicoo, mttkrp_hicoo_traced, MttkrpCooPlan, MttkrpRun,
};
pub use pipeline::{
    fused_registry, owner_ranges, registry, BackendKind, Combo, Ctx, EwOp, ExecRoute, FormatKind,
    FusedExprKind, FusedRoute, FusionChoice, KernelPlan, StrategyChoice, TsOp,
};
pub use tew::{
    tew_any, tew_coo, tew_coo_general, tew_coo_same_pattern, tew_csf, tew_fcoo, tew_ghicoo,
    tew_hicoo, tew_scoo, tew_shicoo, tew_values_into,
};
pub use ts::{
    ts_any, ts_coo, ts_csf, ts_fcoo, ts_ghicoo, ts_hicoo, ts_scoo, ts_shicoo, ts_values_into,
};
pub use ttm::{ttm_coo, ttm_hicoo, ttm_scoo, TtmCooPlan, TtmHicooPlan};
pub use ttv::{ttv_coo, ttv_hicoo, TtvCooPlan, TtvHicooPlan};
pub use tune::{
    host_key, host_llc_bytes, tune_tensor, TensorBucket, TuneEntry, TuneTable, TunedParams,
    DEFAULT_BLOCK_SIZE,
};
pub use workspace::{choose_workspace, FusedWorkspace, WorkspaceKind};

// The unified observability registry, re-exported so downstream crates
// (pasta-algos, the bench harness) need no direct pasta-obs dependency.
pub use pasta_obs as obs;
pub use pasta_obs::{counters, CounterId, CounterRegistry, CounterSnapshot};
