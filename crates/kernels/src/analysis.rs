//! Operational-intensity analysis (Table I of the paper).
//!
//! For a third-order cubical tensor with `M` non-zeros and `M_F` mode-`n`
//! fibers (`I ≪ M_F ≪ M`), 32-bit indices and `f32` values, Table I gives
//! per-kernel flop counts and *upper-bound* memory traffic (irregular
//! accesses counted as misses). These formulas drive the Roofline analysis:
//! `attainable GFLOPS = OI × obtainable bandwidth`.

use pasta_core::{BlockStats, TensorStats};

/// The five PASTA kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kernel {
    /// Tensor element-wise (two-operand streaming).
    Tew,
    /// Tensor-scalar (one-operand streaming).
    Ts,
    /// Tensor-times-vector.
    Ttv,
    /// Tensor-times-matrix.
    Ttm,
    /// Matricized tensor times Khatri-Rao product.
    Mttkrp,
}

impl Kernel {
    /// All five kernels in the paper's order.
    pub const ALL: [Kernel; 5] =
        [Kernel::Tew, Kernel::Ts, Kernel::Ttv, Kernel::Ttm, Kernel::Mttkrp];

    /// The paper's nominal OI approximation for this kernel
    /// (the "OI" column of Table I).
    pub fn nominal_oi(self) -> f64 {
        match self {
            Kernel::Tew => 1.0 / 12.0,
            Kernel::Ts => 1.0 / 8.0,
            Kernel::Ttv => 1.0 / 6.0,
            Kernel::Ttm => 1.0 / 2.0,
            Kernel::Mttkrp => 1.0 / 4.0,
        }
    }

    /// Whether the paper classifies the kernel as *streaming* (regular,
    /// bandwidth-saturating access) — Observation 3 contrasts TEW/TS against
    /// the non-streaming TTV/TTM/MTTKRP.
    pub fn is_streaming(self) -> bool {
        matches!(self, Kernel::Tew | Kernel::Ts)
    }

    /// The kernel's display name as a static string (span labels and the
    /// roofline report need `&'static str`, not a formatter).
    pub fn label(self) -> &'static str {
        match self {
            Kernel::Tew => "TEW",
            Kernel::Ts => "TS",
            Kernel::Ttv => "TTV",
            Kernel::Ttm => "TTM",
            Kernel::Mttkrp => "MTTKRP",
        }
    }
}

impl std::fmt::Display for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Inputs to the Table I cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostParams {
    /// Non-zero count `M`.
    pub m: f64,
    /// Mode-`n` fiber count `M_F` (TTV/TTM only).
    pub mf: f64,
    /// Dense-operand column count `R` (TTM/MTTKRP; the paper uses 16).
    pub r: f64,
    /// HiCOO block count `n_b`.
    pub nb: f64,
    /// HiCOO block size `B` (the paper fixes 128).
    pub block_size: f64,
}

impl CostParams {
    /// Builds cost parameters from tensor statistics for the given product
    /// mode, rank and HiCOO block statistics.
    pub fn from_stats(stats: &TensorStats, mode: usize, r: usize, blocks: &BlockStats) -> Self {
        Self {
            m: stats.nnz as f64,
            mf: stats.fiber_counts[mode] as f64,
            r: r as f64,
            nb: blocks.num_blocks as f64,
            block_size: blocks.block_size as f64,
        }
    }
}

/// One row of Table I: flops, upper-bound bytes for both formats.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelCost {
    /// Floating-point operations.
    pub flops: f64,
    /// Upper-bound bytes moved by the COO implementation.
    pub coo_bytes: f64,
    /// Upper-bound bytes moved by the HiCOO implementation.
    pub hicoo_bytes: f64,
}

impl KernelCost {
    /// Operational intensity of the COO implementation.
    pub fn coo_oi(&self) -> f64 {
        self.flops / self.coo_bytes
    }

    /// Operational intensity of the HiCOO implementation.
    pub fn hicoo_oi(&self) -> f64 {
        self.flops / self.hicoo_bytes
    }
}

/// Evaluates the Table I formulas for `kernel` under `p`.
pub fn kernel_cost(kernel: Kernel, p: &CostParams) -> KernelCost {
    let CostParams { m, mf, r, nb, block_size } = *p;
    match kernel {
        Kernel::Tew => KernelCost { flops: m, coo_bytes: 12.0 * m, hicoo_bytes: 12.0 * m },
        Kernel::Ts => KernelCost { flops: m, coo_bytes: 8.0 * m, hicoo_bytes: 8.0 * m },
        Kernel::Ttv => {
            let bytes = 12.0 * m + 12.0 * mf;
            KernelCost { flops: 2.0 * m, coo_bytes: bytes, hicoo_bytes: bytes }
        }
        Kernel::Ttm => KernelCost {
            flops: 2.0 * m * r,
            coo_bytes: 4.0 * m * r + 4.0 * mf * r + 8.0 * mf + 8.0 * m + 8.0 * mf,
            hicoo_bytes: 4.0 * m * r + 4.0 * mf * r + 8.0 * m + 8.0 * mf,
        },
        Kernel::Mttkrp => KernelCost {
            flops: 3.0 * m * r,
            coo_bytes: 12.0 * m * r + 16.0 * m,
            hicoo_bytes: 12.0 * r * (nb * block_size).min(m) + 7.0 * m + 20.0 * nb,
        },
    }
}

/// The MTTKRP schedule a traced execution actually used.
///
/// [`StrategyChoice`](crate::pipeline::StrategyChoice) is the *request*
/// (auto/forced); this is the *outcome*, reported by the traced kernel
/// entry points and surfaced in `hostrun --json`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MttkrpStrategy {
    /// Single-threaded plain accumulation.
    Sequential,
    /// Owner-computes: fiber-aligned non-zero ranges, each output row
    /// written by exactly one thread. Bit-identical to sequential.
    Owner,
    /// Privatized reduction with dense per-worker accumulators.
    PrivatizedDense,
    /// Privatized reduction with hashed sparse per-worker accumulators
    /// (large mode dimensions).
    PrivatizedSparse,
}

impl MttkrpStrategy {
    /// Whether this is one of the two privatized-reduction variants.
    pub fn is_privatized(self) -> bool {
        matches!(self, MttkrpStrategy::PrivatizedDense | MttkrpStrategy::PrivatizedSparse)
    }

    /// The strategy's lowercase name as a static string (span detail tags
    /// need `&'static str`).
    pub fn label(self) -> &'static str {
        match self {
            MttkrpStrategy::Sequential => "sequential",
            MttkrpStrategy::Owner => "owner",
            MttkrpStrategy::PrivatizedDense => "privatized-dense",
            MttkrpStrategy::PrivatizedSparse => "privatized-sparse",
        }
    }
}

impl std::fmt::Display for MttkrpStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Inputs to the MTTKRP strategy cost model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MttkrpSchedParams {
    /// Non-zero count.
    pub nnz: usize,
    /// Output row count (the mode-`n` dimension).
    pub out_rows: usize,
    /// Factor-matrix rank `R`.
    pub rank: usize,
    /// Requested worker count.
    pub threads: usize,
    /// Whether the tensor is already sorted with mode `n` outermost.
    pub mode_outermost_sorted: bool,
}

/// Picks the contention-free MTTKRP schedule for the given shape of work.
///
/// The model is deliberately coarse — it only has to separate regimes that
/// differ by integer factors, not rank orderings within a regime:
///
/// - one thread (or one non-zero per thread) ⇒ [`MttkrpStrategy::Sequential`];
/// - mode-`n`-outermost sort order ⇒ [`MttkrpStrategy::Owner`] — zero extra
///   memory, bit-identical to sequential, perfectly partitioned writes;
/// - otherwise privatize. Dense accumulators cost
///   `threads × out_rows × rank` values to allocate, fill and merge, so they
///   are used when that total is within `4×` the flop-proportional
///   `nnz × rank` work (`threads·out_rows ≤ 4·nnz`) or when one accumulator
///   is small outright (`out_rows·rank ≤ 2¹⁶` values ⇒ ≤ 512 KiB of `f64`
///   across 8 workers); hyper-sparse outputs fall through to
///   [`MttkrpStrategy::PrivatizedSparse`], whose hashed accumulators scale
///   with touched rows instead of `out_rows`.
pub fn choose_mttkrp_strategy(p: &MttkrpSchedParams) -> MttkrpStrategy {
    choose_mttkrp_strategy_with(p, DEFAULT_DENSE_THRESHOLD)
}

/// The built-in dense-privatization threshold `T` in `threads·rows ≤ T·nnz`
/// (the `4×` of [`choose_mttkrp_strategy`]); the measured autotuner in
/// [`tune`](crate::tune) calibrates a per-bucket replacement.
pub const DEFAULT_DENSE_THRESHOLD: usize = 4;

/// [`choose_mttkrp_strategy`] with an explicit dense-privatization
/// threshold `T` (measured by the autotuner) in place of the built-in
/// [`DEFAULT_DENSE_THRESHOLD`]. The small-output clause
/// (`out_rows·rank ≤ 2¹⁶`) stays a hard floor regardless of `T`: one tiny
/// accumulator per worker is never worth hashing.
pub fn choose_mttkrp_strategy_with(p: &MttkrpSchedParams, threshold: usize) -> MttkrpStrategy {
    if p.threads <= 1 || p.nnz <= 1 {
        return MttkrpStrategy::Sequential;
    }
    if p.mode_outermost_sorted {
        return MttkrpStrategy::Owner;
    }
    let dense_cells = p.threads.saturating_mul(p.out_rows);
    if dense_cells <= threshold.saturating_mul(p.nnz)
        || p.out_rows.saturating_mul(p.rank) <= (1 << 16)
    {
        MttkrpStrategy::PrivatizedDense
    } else {
        MttkrpStrategy::PrivatizedSparse
    }
}

/// Whether a plan that owns its tensor copy should radix re-sort it mode-`n`
/// outermost to unlock owner-computes, instead of privatizing.
///
/// A re-sort costs one `O(nnz)` parallel radix pass but is amortized across
/// every later execution of the plan; privatization pays
/// `threads × out_rows × rank` merge traffic *per execution*. Re-sort when
/// the per-execution merge bill dominates a sort pass:
/// `threads·out_rows > 2·nnz`.
pub fn resort_pays_off(p: &MttkrpSchedParams) -> bool {
    p.threads > 1 && p.threads.saturating_mul(p.out_rows) > 2 * p.nnz
}

/// Inputs to the fuse-vs-materialize cost model for kernel chains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FusionParams {
    /// Input non-zero count.
    pub nnz: usize,
    /// Distinct output fibers (upper bound: `nnz`).
    pub out_fibers: usize,
    /// Values per output fiber on the fused path (`∏R_m` for a TTM chain,
    /// 1 for a TTV product, `R` for an ALS sweep).
    pub dense_volume: usize,
    /// Chain length — how many intermediate tensors the kernel-at-a-time
    /// path would materialize.
    pub steps: usize,
    /// Requested worker count.
    pub threads: usize,
}

/// What the fuse-vs-materialize model decided for a kernel chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FuseDecision {
    /// Execute the chain fused through per-thread workspaces.
    Fuse,
    /// Materialize each intermediate (the kernel-at-a-time baseline).
    Materialize,
}

/// Trade-off factor of [`choose_fusion`]: fuse while workspace traffic is
/// within this multiple of what the materialized path writes, sorts, and
/// re-reads per step.
pub const FUSE_WORKSPACE_FACTOR: usize = 8;

/// Picks fused vs. kernel-at-a-time execution for a chain.
///
/// The materialized path pays, per step, an `O(nnz)` intermediate write, a
/// re-sort/group pass over it, and a read-back — roughly
/// `3·steps·nnz` value-moves plus allocator traffic. The fused path pays
/// the workspace: `out_fibers × dense_volume` resident values (per worker
/// for privatized workspaces). Fusing wins unless the workspace dwarfs the
/// per-step traffic it saves:
/// `threads·out_fibers·dense_volume > 8·steps·nnz ⇒ Materialize`.
///
/// The model is coarse on purpose (like the MTTKRP strategy model): it
/// separates regimes, and the dispatched choice is counted and
/// overridable from [`Ctx::fusion`](crate::pipeline::Ctx::fusion).
pub fn choose_fusion(p: &FusionParams) -> FuseDecision {
    let workspace =
        p.threads.max(1).saturating_mul(p.out_fibers).saturating_mul(p.dense_volume.max(1));
    let saved = FUSE_WORKSPACE_FACTOR.saturating_mul(p.steps.max(1)).saturating_mul(p.nnz.max(1));
    if workspace > saved {
        FuseDecision::Materialize
    } else {
        FuseDecision::Fuse
    }
}

/// One measured kernel execution, ready for roofline-gap comparison.
///
/// `flops`/`bytes` come from the Table I model ([`kernel_cost`]); `time_s`
/// is the measured wall time. The bench harness collects one sample per
/// timed repetition and feeds them to [`roofline_report`].
#[derive(Debug, Clone, PartialEq)]
pub struct RooflineSample {
    /// Which kernel ran.
    pub kernel: Kernel,
    /// Format label (`"coo"`, `"hicoo"`, …).
    pub format: String,
    /// Tensor-bucket label from the tuner taxonomy.
    pub bucket: String,
    /// Measured wall time in seconds.
    pub time_s: f64,
    /// Model flop count for the run.
    pub flops: f64,
    /// Model upper-bound bytes moved for the run.
    pub bytes: f64,
}

/// The model-vs-measured gap for one (aggregated) sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RooflineGap {
    /// Measured GFLOP/s (model flops over measured time).
    pub achieved_gflops: f64,
    /// Measured GB/s (model bytes over measured time).
    pub achieved_gbps: f64,
    /// Operational intensity of the model (flops / bytes).
    pub oi: f64,
    /// The roofline bound: `min(peak_gflops, oi × peak_gbps)`.
    pub bound_gflops: f64,
    /// Achieved fraction of the bound, in `[0, ∞)` (model is an upper
    /// bound on traffic, so > 1 means the model under-counts reuse).
    pub fraction: f64,
}

/// Host peak compute and bandwidth `(GFLOP/s, GB/s)` for roofline bounds.
///
/// Reads `PASTA_PEAK_GFLOPS` / `PASTA_PEAK_GBPS`; without calibration it
/// falls back to deliberately conservative single-socket defaults, so the
/// printed fractions are comparable run-to-run rather than absolute.
pub fn host_peaks() -> (f64, f64) {
    let read = |key: &str, default: f64| {
        std::env::var(key).ok().and_then(|v| v.parse().ok()).filter(|&v| v > 0.0).unwrap_or(default)
    };
    (read("PASTA_PEAK_GFLOPS", 32.0), read("PASTA_PEAK_GBPS", 16.0))
}

/// Compares one sample against the roofline defined by the given peaks.
pub fn roofline_gap(s: &RooflineSample, peak_gflops: f64, peak_gbps: f64) -> RooflineGap {
    let t = s.time_s.max(1e-12);
    let oi = s.flops / s.bytes.max(1.0);
    let bound_gflops = peak_gflops.min(oi * peak_gbps);
    let achieved_gflops = s.flops / t / 1e9;
    RooflineGap {
        achieved_gflops,
        achieved_gbps: s.bytes / t / 1e9,
        oi,
        bound_gflops,
        fraction: achieved_gflops / bound_gflops.max(1e-12),
    }
}

/// Renders the per-`(kernel, format, bucket)` roofline-gap table.
///
/// Samples sharing a key are aggregated (times, flops and bytes summed —
/// equivalent to a time-weighted average of their rates) and compared
/// against [`host_peaks`]. Returns the empty string for no samples.
pub fn roofline_report(samples: &[RooflineSample]) -> String {
    use std::collections::BTreeMap;
    if samples.is_empty() {
        return String::new();
    }
    let (peak_gflops, peak_gbps) = host_peaks();
    let mut groups: BTreeMap<(&str, &str, &str), RooflineSample> = BTreeMap::new();
    for s in samples {
        groups
            .entry((s.kernel.label(), s.format.as_str(), s.bucket.as_str()))
            .and_modify(|acc| {
                acc.time_s += s.time_s;
                acc.flops += s.flops;
                acc.bytes += s.bytes;
            })
            .or_insert_with(|| s.clone());
    }
    let mut out = format!(
        "roofline gap vs model (peaks {peak_gflops:.1} GFLOP/s, {peak_gbps:.1} GB/s; \
         calibrate via PASTA_PEAK_GFLOPS/PASTA_PEAK_GBPS)\n{:<8} {:<8} {:<16} {:>8} {:>12} \
         {:>12} {:>10} {:>7}\n",
        "kernel", "format", "bucket", "oi", "bound GF/s", "meas GF/s", "meas GB/s", "frac"
    );
    for ((kernel, format, bucket), agg) in &groups {
        let g = roofline_gap(agg, peak_gflops, peak_gbps);
        out.push_str(&format!(
            "{kernel:<8} {format:<8} {bucket:<16} {:>8.4} {:>12.3} {:>12.3} {:>10.3} {:>6.1}%\n",
            g.oi,
            g.bound_gflops,
            g.achieved_gflops,
            g.achieved_gbps,
            g.fraction * 100.0
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> CostParams {
        CostParams { m: 1e6, mf: 1e5, r: 16.0, nb: 2e4, block_size: 128.0 }
    }

    #[test]
    fn tew_ts_exact_ois() {
        let p = params();
        let tew = kernel_cost(Kernel::Tew, &p);
        assert!((tew.coo_oi() - 1.0 / 12.0).abs() < 1e-12);
        assert_eq!(tew.coo_bytes, tew.hicoo_bytes);
        let ts = kernel_cost(Kernel::Ts, &p);
        assert!((ts.coo_oi() - 1.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn ttv_oi_approaches_one_sixth() {
        // With M_F ≪ M the OI tends to 2M / 12M = 1/6.
        let p = CostParams { m: 1e8, mf: 1e4, ..params() };
        let c = kernel_cost(Kernel::Ttv, &p);
        assert!((c.coo_oi() - 1.0 / 6.0).abs() < 1e-3);
    }

    #[test]
    fn ttm_oi_approaches_one_half() {
        // With R large and M_F ≪ M: 2MR / 4MR = 1/2.
        let p = CostParams { m: 1e8, mf: 1e4, r: 256.0, ..params() };
        let c = kernel_cost(Kernel::Ttm, &p);
        assert!((c.coo_oi() - 0.5).abs() < 0.01);
        // HiCOO moves strictly fewer bytes (drops one 8·M_F term).
        assert!(c.hicoo_bytes < c.coo_bytes);
    }

    #[test]
    fn mttkrp_oi_approaches_one_quarter() {
        let p = CostParams { m: 1e8, r: 1024.0, ..params() };
        let c = kernel_cost(Kernel::Mttkrp, &p);
        assert!((c.coo_oi() - 0.25).abs() < 0.01);
    }

    #[test]
    fn mttkrp_hicoo_benefits_from_dense_blocks() {
        // Dense blocks: n_b·B < M, so the matrix traffic term shrinks.
        let dense_blocks = CostParams { m: 1e6, nb: 1e3, block_size: 128.0, ..params() };
        let c = kernel_cost(Kernel::Mttkrp, &dense_blocks);
        assert!(c.hicoo_bytes < c.coo_bytes);
        // Hyper-sparse blocks (one nnz per block): min() clamps at M and the
        // advantage shrinks to the index compression alone.
        let hyper = CostParams { m: 1e6, nb: 1e6, block_size: 128.0, ..params() };
        let ch = kernel_cost(Kernel::Mttkrp, &hyper);
        assert!(ch.hicoo_bytes > c.hicoo_bytes);
    }

    #[test]
    fn nominal_ois_match_table() {
        assert_eq!(Kernel::Tew.nominal_oi(), 1.0 / 12.0);
        assert_eq!(Kernel::Ts.nominal_oi(), 1.0 / 8.0);
        assert_eq!(Kernel::Ttv.nominal_oi(), 1.0 / 6.0);
        assert_eq!(Kernel::Ttm.nominal_oi(), 1.0 / 2.0);
        assert_eq!(Kernel::Mttkrp.nominal_oi(), 1.0 / 4.0);
    }

    #[test]
    fn streaming_classification() {
        assert!(Kernel::Tew.is_streaming());
        assert!(Kernel::Ts.is_streaming());
        assert!(!Kernel::Ttv.is_streaming());
        assert!(!Kernel::Mttkrp.is_streaming());
        assert_eq!(Kernel::ALL.len(), 5);
    }

    #[test]
    fn display_names() {
        let names: Vec<String> = Kernel::ALL.iter().map(|k| k.to_string()).collect();
        assert_eq!(names, vec!["TEW", "TS", "TTV", "TTM", "MTTKRP"]);
    }

    fn sched(nnz: usize, out_rows: usize, threads: usize, sorted: bool) -> MttkrpSchedParams {
        MttkrpSchedParams { nnz, out_rows, rank: 16, threads, mode_outermost_sorted: sorted }
    }

    #[test]
    fn strategy_regimes() {
        // One thread: always sequential, even when sorted.
        assert_eq!(choose_mttkrp_strategy(&sched(1_000, 100, 1, true)), MttkrpStrategy::Sequential);
        // Sorted mode-outermost: owner-computes wins outright.
        assert_eq!(choose_mttkrp_strategy(&sched(1_000, 100, 4, true)), MttkrpStrategy::Owner);
        // Unsorted, small output: dense privatization.
        assert_eq!(
            choose_mttkrp_strategy(&sched(1_000_000, 1_000, 8, false)),
            MttkrpStrategy::PrivatizedDense
        );
        // Unsorted, hyper-sparse output (rows ≫ nnz): sparse privatization.
        assert_eq!(
            choose_mttkrp_strategy(&sched(10_000, 100_000_000, 8, false)),
            MttkrpStrategy::PrivatizedSparse
        );
    }

    #[test]
    fn strategy_display_and_classes() {
        assert_eq!(MttkrpStrategy::Owner.to_string(), "owner");
        assert_eq!(MttkrpStrategy::PrivatizedSparse.to_string(), "privatized-sparse");
        assert!(MttkrpStrategy::PrivatizedDense.is_privatized());
        assert!(!MttkrpStrategy::Owner.is_privatized());
        assert!(!MttkrpStrategy::Sequential.is_privatized());
    }

    #[test]
    fn resort_heuristic() {
        // Merge-dominated: tall output, many threads.
        assert!(resort_pays_off(&sched(10_000, 1_000_000, 8, false)));
        // Nnz-dominated: short output.
        assert!(!resort_pays_off(&sched(1_000_000, 1_000, 8, false)));
        // Never for one thread.
        assert!(!resort_pays_off(&sched(10, 1_000_000, 1, false)));
    }

    #[test]
    fn roofline_gap_and_report() {
        let s = RooflineSample {
            kernel: Kernel::Mttkrp,
            format: "coo".into(),
            bucket: "large".into(),
            time_s: 1.0,
            flops: 4e9,
            bytes: 16e9,
        };
        let g = roofline_gap(&s, 32.0, 16.0);
        assert!((g.oi - 0.25).abs() < 1e-12);
        assert!((g.bound_gflops - 4.0).abs() < 1e-12); // bandwidth-bound
        assert!((g.achieved_gflops - 4.0).abs() < 1e-9);
        assert!((g.fraction - 1.0).abs() < 1e-9);
        let report = roofline_report(&[s.clone(), s]);
        assert!(report.contains("MTTKRP"));
        assert!(report.contains("coo"));
        assert!(report.contains("large"));
        // Aggregation is rate-preserving: two identical samples, same gap.
        assert!(report.contains("100.0%"));
        assert!(roofline_report(&[]).is_empty());
    }

    #[test]
    fn fusion_regimes() {
        // Typical Tucker chain: fibers ≤ nnz, modest dense volume — fuse.
        let p = FusionParams {
            nnz: 100_000,
            out_fibers: 5_000,
            dense_volume: 64,
            steps: 2,
            threads: 1,
        };
        assert_eq!(choose_fusion(&p), FuseDecision::Fuse);
        // TTV product: dense_volume 1 — always fuses.
        let p =
            FusionParams { nnz: 1_000, out_fibers: 1_000, dense_volume: 1, steps: 3, threads: 8 };
        assert_eq!(choose_fusion(&p), FuseDecision::Fuse);
        // Workspace blow-up: huge fiber count × wide blocks × many workers.
        let p = FusionParams {
            nnz: 10_000,
            out_fibers: 10_000,
            dense_volume: 4_096,
            steps: 2,
            threads: 8,
        };
        assert_eq!(choose_fusion(&p), FuseDecision::Materialize);
    }
}
