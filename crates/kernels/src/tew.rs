//! TEW — tensor element-wise operations (Section II-A).
//!
//! `Z = X op Y` for `op ∈ {+, −, ∘, ⊘}`. Two cases:
//!
//! - **Same pattern** (the case the paper analyzes): both tensors share one
//!   non-zero pattern, so the output pattern is known and the kernel is a
//!   single loop over the value arrays — operational intensity 1/12.
//! - **General**: different patterns and the kernel merges the two sorted
//!   non-zero streams, predicting the output pattern as it goes (union for
//!   add/sub, intersection for multiply).
//!
//! All other formats perform the identical value computation (the paper's
//! HiCOO-TEW shares COO-TEW's value loop): [`tew_any`] checks structural
//! equality through [`FormatAccess::same_structure`], reuses the input's
//! structure, and runs the one value loop — so every format gets the kernel
//! from a single implementation.

use crate::pipeline::{Ctx, EwOp};
use pasta_core::{
    CooTensor, CsfTensor, Error, FCooTensor, FormatAccess, GHiCooTensor, HiCooTensor, Result,
    SHiCooTensor, SemiCooTensor, Value,
};
use pasta_par::{parallel_for, SharedSlice};
use std::cmp::Ordering;
use std::sync::atomic::{AtomicBool, Ordering as AtomicOrd};

/// Element-wise value loop shared by the COO and HiCOO kernels.
///
/// Writes `out[i] = op(x[i], y[i])`; returns an error on division by zero.
fn ew_vals<V: Value>(op: EwOp, x: &[V], y: &[V], out: &mut [V], ctx: &Ctx) -> Result<()> {
    debug_assert_eq!(x.len(), y.len());
    debug_assert_eq!(x.len(), out.len());
    if op == EwOp::Div && y.contains(&V::ZERO) {
        return Err(Error::DivisionByZero);
    }
    let bad = AtomicBool::new(false);
    let shared = SharedSlice::new(out);
    parallel_for(x.len(), ctx.threads, ctx.schedule, |range| {
        for i in range {
            let v = op.apply(x[i], y[i]);
            if !v.is_finite() {
                bad.store(true, AtomicOrd::Relaxed);
            }
            // SAFETY: parallel_for ranges partition the index space.
            unsafe { shared.write(i, v) };
        }
    });
    let _ = bad; // non-finite results are legal (overflow); flag kept for debugging
    Ok(())
}

/// The bare TEW value loop on pre-allocated buffers — the portion the
/// paper's methodology times (output allocation and index setup are
/// pre-processing).
///
/// # Errors
///
/// Returns [`Error::DivisionByZero`] for `Div` with a zero in `y`, and
/// [`Error::OperandMismatch`] for length mismatches.
pub fn tew_values_into<V: Value>(
    op: EwOp,
    x: &[V],
    y: &[V],
    out: &mut [V],
    ctx: &Ctx,
) -> Result<()> {
    if x.len() != y.len() || x.len() != out.len() {
        return Err(Error::OperandMismatch {
            what: format!("value arrays of lengths {}, {}, {}", x.len(), y.len(), out.len()),
        });
    }
    ew_vals(op, x, y, out, ctx)
}

/// TEW over any format with matching stored structure: `Z = X op Y`.
///
/// The one same-pattern element-wise kernel, written once against
/// [`FormatAccess`]: after the structural check the output reuses `x`'s
/// indices verbatim and only the stored value array is recomputed, exactly
/// as each per-format kernel did before. Semi-sparse formats store explicit
/// zeros inside dense fibers; those participate like any other value, so
/// `Div` rejects a `y` with a zero anywhere in a stored fiber.
///
/// # Errors
///
/// Returns [`Error::PatternMismatch`] if the tensors differ in shape or
/// stored structure, and [`Error::DivisionByZero`] for `Div` with a zero
/// among `y`'s stored values.
pub fn tew_any<V: Value, T: FormatAccess<V> + Clone>(
    op: EwOp,
    x: &T,
    y: &T,
    ctx: &Ctx,
) -> Result<T> {
    if !x.same_structure(y) {
        return Err(Error::PatternMismatch);
    }
    // Pre-processing: the output shares x's structure; values start zeroed.
    let mut z = x.clone();
    z.stored_vals_mut().fill(V::ZERO);
    ew_vals(op, x.stored_vals(), y.stored_vals(), z.stored_vals_mut(), ctx)?;
    Ok(z)
}

/// COO-TEW with identical non-zero patterns: `Z = X op Y`.
///
/// # Errors
///
/// Returns [`Error::PatternMismatch`] if the tensors differ in shape or
/// pattern, and [`Error::DivisionByZero`] for `Div` with a zero in `y`.
///
/// # Examples
///
/// ```
/// use pasta_core::{CooTensor, Shape};
/// use pasta_kernels::{tew_coo_same_pattern, Ctx, EwOp};
///
/// # fn main() -> Result<(), pasta_core::Error> {
/// let x = CooTensor::from_entries(Shape::new(vec![2, 2]), vec![(vec![0, 1], 2.0_f32)])?;
/// let y = x.like_pattern(3.0);
/// let z = tew_coo_same_pattern(EwOp::Add, &x, &y, &Ctx::sequential())?;
/// assert_eq!(z.get(&[0, 1]), Some(5.0));
/// # Ok(())
/// # }
/// ```
pub fn tew_coo_same_pattern<V: Value>(
    op: EwOp,
    x: &CooTensor<V>,
    y: &CooTensor<V>,
    ctx: &Ctx,
) -> Result<CooTensor<V>> {
    tew_any(op, x, y, ctx)
}

/// COO-TEW for arbitrary patterns: merges the two sorted non-zero streams.
///
/// Union semantics for `Add`/`Sub` (a missing element is zero), intersection
/// for `Mul`. `Div` requires `y`'s pattern to cover `x`'s (an `x` non-zero
/// over a zero divisor is an error); elements only in `y` contribute `0/y=0`
/// and are dropped.
///
/// Runs sequentially — the output size is not known in advance, which is why
/// the paper analyzes only the same-pattern case for performance.
///
/// # Errors
///
/// Returns [`Error::ShapeMismatch`] for differing shapes and
/// [`Error::DivisionByZero`] as described above.
pub fn tew_coo_general<V: Value>(
    op: EwOp,
    x: &CooTensor<V>,
    y: &CooTensor<V>,
) -> Result<CooTensor<V>> {
    if x.shape() != y.shape() {
        return Err(Error::ShapeMismatch {
            left: x.shape().dims().to_vec(),
            right: y.shape().dims().to_vec(),
        });
    }
    let mut xs = x.clone();
    xs.sort();
    let mut ys = y.clone();
    ys.sort();
    let order = x.order();
    let cmp = |a: usize, b: usize| -> Ordering {
        for m in 0..order {
            let o = xs.mode_inds(m)[a].cmp(&ys.mode_inds(m)[b]);
            if o != Ordering::Equal {
                return o;
            }
        }
        Ordering::Equal
    };

    let mut z = CooTensor::with_capacity(x.shape().clone(), xs.nnz().max(ys.nnz()));
    let (mut i, mut j) = (0usize, 0usize);
    let (nx, ny) = (xs.nnz(), ys.nnz());
    while i < nx || j < ny {
        let side = if i >= nx {
            Ordering::Greater
        } else if j >= ny {
            Ordering::Less
        } else {
            cmp(i, j)
        };
        match side {
            Ordering::Equal => {
                let (xv, yv) = (xs.vals()[i], ys.vals()[j]);
                if op == EwOp::Div && yv == V::ZERO {
                    return Err(Error::DivisionByZero);
                }
                let v = op.apply(xv, yv);
                if v != V::ZERO {
                    z.push(&xs.coords_of(i), v)?;
                }
                i += 1;
                j += 1;
            }
            Ordering::Less => {
                // Only in x: y element is zero.
                match op {
                    EwOp::Add => z.push(&xs.coords_of(i), xs.vals()[i])?,
                    EwOp::Sub => z.push(&xs.coords_of(i), xs.vals()[i])?,
                    EwOp::Mul => {}
                    EwOp::Div => return Err(Error::DivisionByZero),
                }
                i += 1;
            }
            Ordering::Greater => {
                // Only in y: x element is zero.
                match op {
                    EwOp::Add => z.push(&ys.coords_of(j), ys.vals()[j])?,
                    EwOp::Sub => z.push(&ys.coords_of(j), -ys.vals()[j])?,
                    EwOp::Mul | EwOp::Div => {}
                }
                j += 1;
            }
        }
    }
    Ok(z)
}

/// COO-TEW dispatcher: takes the fast path when patterns match.
///
/// # Errors
///
/// As for [`tew_coo_same_pattern`] / [`tew_coo_general`].
pub fn tew_coo<V: Value>(
    op: EwOp,
    x: &CooTensor<V>,
    y: &CooTensor<V>,
    ctx: &Ctx,
) -> Result<CooTensor<V>> {
    if x.same_pattern(y) {
        tew_coo_same_pattern(op, x, y, ctx)
    } else {
        tew_coo_general(op, x, y)
    }
}

/// HiCOO-TEW with identical block structure (e.g. both converted from
/// same-pattern COO tensors with one block size) — [`tew_any`].
///
/// # Errors
///
/// Returns [`Error::PatternMismatch`] if the block structures differ, and
/// [`Error::DivisionByZero`] for `Div` with a zero in `y`.
pub fn tew_hicoo<V: Value>(
    op: EwOp,
    x: &HiCooTensor<V>,
    y: &HiCooTensor<V>,
    ctx: &Ctx,
) -> Result<HiCooTensor<V>> {
    tew_any(op, x, y, ctx)
}

/// sCOO-TEW with identical fiber structure: the op runs over the dense
/// per-fiber value arrays in one pass — [`tew_any`].
///
/// Stored zeros inside dense fibers participate like any other value, so
/// `Div` returns [`Error::DivisionByZero`] if any `y` fiber holds a zero.
///
/// # Errors
///
/// Returns [`Error::PatternMismatch`] if the tensors differ in shape, dense
/// modes or fiber indices, and [`Error::DivisionByZero`] as described.
pub fn tew_scoo<V: Value>(
    op: EwOp,
    x: &SemiCooTensor<V>,
    y: &SemiCooTensor<V>,
    ctx: &Ctx,
) -> Result<SemiCooTensor<V>> {
    tew_any(op, x, y, ctx)
}

/// gHiCOO-TEW with identical block structure: only the value loop runs; the
/// block and element indices are reused from `x` — [`tew_any`].
///
/// # Errors
///
/// Returns [`Error::PatternMismatch`] if the block structures differ, and
/// [`Error::DivisionByZero`] for `Div` with a zero in `y`.
pub fn tew_ghicoo<V: Value>(
    op: EwOp,
    x: &GHiCooTensor<V>,
    y: &GHiCooTensor<V>,
    ctx: &Ctx,
) -> Result<GHiCooTensor<V>> {
    tew_any(op, x, y, ctx)
}

/// sHiCOO-TEW with identical fiber and block structure: one pass over the
/// dense per-fiber values, like [`tew_scoo`].
///
/// # Errors
///
/// Returns [`Error::PatternMismatch`] if the structures differ, and
/// [`Error::DivisionByZero`] for `Div` with a zero anywhere in `y`'s fibers.
pub fn tew_shicoo<V: Value>(
    op: EwOp,
    x: &SHiCooTensor<V>,
    y: &SHiCooTensor<V>,
    ctx: &Ctx,
) -> Result<SHiCooTensor<V>> {
    tew_any(op, x, y, ctx)
}

/// CSF-TEW with identical tree structure: the fiber tree is reused and the
/// leaf value array recomputed — [`tew_any`].
///
/// # Errors
///
/// Returns [`Error::PatternMismatch`] if the trees differ, and
/// [`Error::DivisionByZero`] for `Div` with a zero in `y`.
pub fn tew_csf<V: Value>(
    op: EwOp,
    x: &CsfTensor<V>,
    y: &CsfTensor<V>,
    ctx: &Ctx,
) -> Result<CsfTensor<V>> {
    tew_any(op, x, y, ctx)
}

/// F-COO-TEW with identical fiber layout (same product mode, flags and
/// coordinates): only the value array is recomputed — [`tew_any`].
///
/// # Errors
///
/// Returns [`Error::PatternMismatch`] if the layouts differ, and
/// [`Error::DivisionByZero`] for `Div` with a zero in `y`.
pub fn tew_fcoo<V: Value>(
    op: EwOp,
    x: &FCooTensor<V>,
    y: &FCooTensor<V>,
    ctx: &Ctx,
) -> Result<FCooTensor<V>> {
    tew_any(op, x, y, ctx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pasta_core::Shape;

    fn base() -> CooTensor<f32> {
        CooTensor::from_entries(
            Shape::new(vec![4, 4, 4]),
            vec![(vec![0, 0, 0], 1.0), (vec![1, 2, 3], 2.0), (vec![3, 3, 3], -4.0)],
        )
        .unwrap()
    }

    #[test]
    fn same_pattern_all_ops() {
        let x = base();
        let mut y = x.like_pattern(0.0);
        y.vals_mut().copy_from_slice(&[2.0, 4.0, 2.0]);
        let ctx = Ctx::sequential();
        assert_eq!(
            tew_coo_same_pattern(EwOp::Add, &x, &y, &ctx).unwrap().vals(),
            &[3.0, 6.0, -2.0]
        );
        assert_eq!(
            tew_coo_same_pattern(EwOp::Sub, &x, &y, &ctx).unwrap().vals(),
            &[-1.0, -2.0, -6.0]
        );
        assert_eq!(
            tew_coo_same_pattern(EwOp::Mul, &x, &y, &ctx).unwrap().vals(),
            &[2.0, 8.0, -8.0]
        );
        assert_eq!(
            tew_coo_same_pattern(EwOp::Div, &x, &y, &ctx).unwrap().vals(),
            &[0.5, 0.5, -2.0]
        );
    }

    #[test]
    fn parallel_matches_sequential() {
        let n = 10_000u32;
        let entries: Vec<(Vec<u32>, f32)> =
            (0..n).map(|i| (vec![i % 100, i / 100], (i as f32).sin())).collect();
        let x = CooTensor::from_entries(Shape::new(vec![100, 100]), entries).unwrap();
        let y = x.like_pattern(1.5);
        let seq = tew_coo_same_pattern(EwOp::Mul, &x, &y, &Ctx::sequential()).unwrap();
        let par =
            tew_coo_same_pattern(EwOp::Mul, &x, &y, &Ctx::new(8, pasta_par::Schedule::Dynamic(64)))
                .unwrap();
        assert_eq!(seq, par);
    }

    #[test]
    fn pattern_mismatch_detected() {
        let x = base();
        let y = CooTensor::from_entries(Shape::new(vec![4, 4, 4]), vec![(vec![0, 0, 1], 1.0_f32)])
            .unwrap();
        assert!(matches!(
            tew_coo_same_pattern(EwOp::Add, &x, &y, &Ctx::sequential()),
            Err(Error::PatternMismatch)
        ));
        // The dispatcher falls back to the general path.
        assert!(tew_coo(EwOp::Add, &x, &y, &Ctx::sequential()).is_ok());
    }

    #[test]
    fn division_by_zero_same_pattern() {
        let x = base();
        let mut y = x.like_pattern(0.0);
        y.vals_mut()[1] = 0.0;
        y.vals_mut()[0] = 1.0;
        y.vals_mut()[2] = 1.0;
        assert!(matches!(
            tew_coo_same_pattern(EwOp::Div, &x, &y, &Ctx::sequential()),
            Err(Error::DivisionByZero)
        ));
    }

    #[test]
    fn general_union_add() {
        let x = CooTensor::from_entries(
            Shape::new(vec![3, 3]),
            vec![(vec![0, 0], 1.0_f32), (vec![1, 1], 2.0)],
        )
        .unwrap();
        let y = CooTensor::from_entries(
            Shape::new(vec![3, 3]),
            vec![(vec![1, 1], 5.0_f32), (vec![2, 2], 7.0)],
        )
        .unwrap();
        let z = tew_coo_general(EwOp::Add, &x, &y).unwrap();
        assert_eq!(z.nnz(), 3);
        assert_eq!(z.get(&[0, 0]), Some(1.0));
        assert_eq!(z.get(&[1, 1]), Some(7.0));
        assert_eq!(z.get(&[2, 2]), Some(7.0));

        let zs = tew_coo_general(EwOp::Sub, &x, &y).unwrap();
        assert_eq!(zs.get(&[2, 2]), Some(-7.0));
        assert_eq!(zs.get(&[1, 1]), Some(-3.0));
    }

    #[test]
    fn general_intersection_mul() {
        let x = CooTensor::from_entries(
            Shape::new(vec![3, 3]),
            vec![(vec![0, 0], 2.0_f32), (vec![1, 1], 3.0)],
        )
        .unwrap();
        let y = CooTensor::from_entries(
            Shape::new(vec![3, 3]),
            vec![(vec![1, 1], 4.0_f32), (vec![2, 2], 9.0)],
        )
        .unwrap();
        let z = tew_coo_general(EwOp::Mul, &x, &y).unwrap();
        assert_eq!(z.nnz(), 1);
        assert_eq!(z.get(&[1, 1]), Some(12.0));
    }

    #[test]
    fn general_cancellation_drops_zero() {
        let x =
            CooTensor::from_entries(Shape::new(vec![2, 2]), vec![(vec![0, 0], 3.0_f32)]).unwrap();
        let y = x.clone();
        let z = tew_coo_general(EwOp::Sub, &x, &y).unwrap();
        assert_eq!(z.nnz(), 0);
    }

    #[test]
    fn general_div_needs_cover() {
        let x =
            CooTensor::from_entries(Shape::new(vec![2, 2]), vec![(vec![0, 0], 3.0_f32)]).unwrap();
        let y =
            CooTensor::from_entries(Shape::new(vec![2, 2]), vec![(vec![1, 1], 2.0_f32)]).unwrap();
        assert!(matches!(tew_coo_general(EwOp::Div, &x, &y), Err(Error::DivisionByZero)));
        // Covered case works; y-only entries vanish (0 / y).
        let y2 = CooTensor::from_entries(
            Shape::new(vec![2, 2]),
            vec![(vec![0, 0], 2.0_f32), (vec![1, 1], 5.0)],
        )
        .unwrap();
        let z = tew_coo_general(EwOp::Div, &x, &y2).unwrap();
        assert_eq!(z.nnz(), 1);
        assert_eq!(z.get(&[0, 0]), Some(1.5));
    }

    #[test]
    fn general_shape_mismatch() {
        let x = CooTensor::<f32>::new(Shape::new(vec![2, 2]));
        let y = CooTensor::<f32>::new(Shape::new(vec![2, 3]));
        assert!(matches!(tew_coo_general(EwOp::Add, &x, &y), Err(Error::ShapeMismatch { .. })));
    }

    #[test]
    fn hicoo_matches_coo() {
        let x = base();
        let mut y = x.like_pattern(0.0);
        y.vals_mut().copy_from_slice(&[3.0, 1.0, 2.0]);
        let ctx = Ctx::sequential();
        let z_coo = tew_coo_same_pattern(EwOp::Add, &x, &y, &ctx).unwrap();
        let hx = HiCooTensor::from_coo(&x, 2).unwrap();
        let hy = HiCooTensor::from_coo(&y, 2).unwrap();
        let z_hicoo = tew_hicoo(EwOp::Add, &hx, &hy, &ctx).unwrap();
        let mut a = z_hicoo.to_coo();
        a.sort();
        let mut b = z_coo;
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn hicoo_structure_mismatch() {
        let x = base();
        let hx = HiCooTensor::from_coo(&x, 2).unwrap();
        let hx4 = HiCooTensor::from_coo(&x, 4).unwrap();
        assert!(matches!(
            tew_hicoo(EwOp::Add, &hx, &hx4, &Ctx::sequential()),
            Err(Error::PatternMismatch)
        ));
    }

    fn scoo_pair() -> (SemiCooTensor<f32>, SemiCooTensor<f32>) {
        let shape = Shape::new(vec![3, 4, 2]);
        let inds = vec![vec![0, 1, 2], vec![0, 0, 1]];
        let x = SemiCooTensor::from_fibers(
            shape.clone(),
            vec![1],
            inds.clone(),
            (1..=12).map(|i| i as f32).collect(),
        )
        .unwrap();
        let y = SemiCooTensor::from_fibers(
            shape,
            vec![1],
            inds,
            (1..=12).map(|i| (i as f32) * 0.5).collect(),
        )
        .unwrap();
        (x, y)
    }

    #[test]
    fn scoo_matches_coo() {
        let (x, y) = scoo_pair();
        let ctx = Ctx::sequential();
        let z = tew_scoo(EwOp::Mul, &x, &y, &ctx).unwrap();
        let mut got = z.to_coo();
        got.sort();
        let mut want = tew_coo(EwOp::Mul, &x.to_coo(), &y.to_coo(), &ctx).unwrap();
        want.sort();
        assert_eq!(got, want);
        // Structure untouched.
        assert_eq!(z.sparse_inds(0), x.sparse_inds(0));
    }

    #[test]
    fn scoo_fiber_mismatch() {
        let (x, _) = scoo_pair();
        let y = SemiCooTensor::from_fibers(
            Shape::new(vec![3, 4, 2]),
            vec![1],
            vec![vec![0, 1, 2], vec![1, 0, 1]],
            vec![1.0; 12],
        )
        .unwrap();
        assert!(matches!(
            tew_scoo(EwOp::Add, &x, &y, &Ctx::sequential()),
            Err(Error::PatternMismatch)
        ));
    }

    #[test]
    fn ghicoo_matches_coo() {
        let x = base();
        let mut y = x.like_pattern(0.0);
        y.vals_mut().copy_from_slice(&[3.0, 1.0, 2.0]);
        let ctx = Ctx::sequential();
        let gx = GHiCooTensor::from_coo(&x, 2, &[true, false, true]).unwrap();
        let gy = GHiCooTensor::from_coo(&y, 2, &[true, false, true]).unwrap();
        let z = tew_ghicoo(EwOp::Add, &gx, &gy, &ctx).unwrap();
        let mut got = z.to_coo();
        got.sort();
        let mut want = tew_coo_same_pattern(EwOp::Add, &x, &y, &ctx).unwrap();
        want.sort();
        assert_eq!(got, want);
        assert_eq!(z.bptr(), gx.bptr());
    }

    #[test]
    fn ghicoo_structure_mismatch() {
        let x = base();
        let gx = GHiCooTensor::from_coo(&x, 2, &[true, false, true]).unwrap();
        let gx2 = GHiCooTensor::from_coo(&x, 2, &[true, true, true]).unwrap();
        assert!(matches!(
            tew_ghicoo(EwOp::Add, &gx, &gx2, &Ctx::sequential()),
            Err(Error::PatternMismatch)
        ));
    }

    #[test]
    fn shicoo_matches_scoo() {
        let (x, y) = scoo_pair();
        let ctx = Ctx::sequential();
        let sx = SHiCooTensor::from_scoo(&x, 2).unwrap();
        let sy = SHiCooTensor::from_scoo(&y, 2).unwrap();
        let z = tew_shicoo(EwOp::Sub, &sx, &sy, &ctx).unwrap();
        let mut got = z.to_scoo().unwrap().to_coo();
        got.sort();
        let mut want = tew_scoo(EwOp::Sub, &x, &y, &ctx).unwrap().to_coo();
        want.sort();
        assert_eq!(got, want);
        assert_eq!(z.bptr(), sx.bptr());
    }

    #[test]
    fn shicoo_structure_mismatch() {
        let (x, _) = scoo_pair();
        let sx = SHiCooTensor::from_scoo(&x, 2).unwrap();
        let sx4 = SHiCooTensor::from_scoo(&x, 4).unwrap();
        assert!(matches!(
            tew_shicoo(EwOp::Add, &sx, &sx4, &Ctx::sequential()),
            Err(Error::PatternMismatch)
        ));
    }

    #[test]
    fn csf_matches_coo() {
        let x = base();
        let mut y = x.like_pattern(0.0);
        y.vals_mut().copy_from_slice(&[3.0, 1.0, 2.0]);
        let ctx = Ctx::sequential();
        let cx = CsfTensor::from_coo(&x, &[0, 1, 2]).unwrap();
        let cy = CsfTensor::from_coo(&y, &[0, 1, 2]).unwrap();
        let z = tew_csf(EwOp::Mul, &cx, &cy, &ctx).unwrap();
        let mut got = z.to_coo();
        got.sort();
        let mut want = tew_coo_same_pattern(EwOp::Mul, &x, &y, &ctx).unwrap();
        want.sort();
        assert_eq!(got, want);
        // Mismatched trees are rejected.
        let cyr = CsfTensor::from_coo(&y, &[2, 1, 0]).unwrap();
        assert!(matches!(tew_csf(EwOp::Add, &cx, &cyr, &ctx), Err(Error::PatternMismatch)));
    }

    #[test]
    fn fcoo_matches_coo() {
        let x = base();
        let mut y = x.like_pattern(0.0);
        y.vals_mut().copy_from_slice(&[3.0, 1.0, 2.0]);
        let ctx = Ctx::sequential();
        let fx = FCooTensor::from_coo(&x, 1).unwrap();
        let fy = FCooTensor::from_coo(&y, 1).unwrap();
        let z = tew_fcoo(EwOp::Add, &fx, &fy, &ctx).unwrap();
        let mut got = z.to_coo();
        got.sort();
        let mut want = tew_coo_same_pattern(EwOp::Add, &x, &y, &ctx).unwrap();
        want.sort();
        assert_eq!(got, want);
        // A different product mode changes the layout and is rejected.
        let fy2 = FCooTensor::from_coo(&y, 2).unwrap();
        assert!(matches!(tew_fcoo(EwOp::Add, &fx, &fy2, &ctx), Err(Error::PatternMismatch)));
    }

    #[test]
    fn scoo_div_by_stored_zero_rejected() {
        let (x, mut y) = scoo_pair();
        y.vals_mut()[5] = 0.0;
        assert!(matches!(
            tew_scoo(EwOp::Div, &x, &y, &Ctx::sequential()),
            Err(Error::DivisionByZero)
        ));
    }
}
