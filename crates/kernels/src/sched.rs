//! Contention-free MTTKRP scheduling primitives.
//!
//! Two building blocks for the atomic-free strategies picked by
//! [`choose_mttkrp_strategy`](crate::analysis::choose_mttkrp_strategy):
//!
//! - [`owner_ranges`] cuts a non-decreasing row-index array into per-thread
//!   non-zero ranges aligned at row boundaries, so each output row has
//!   exactly one owner (the "owner-computes" rule);
//! - [`SparseAcc`] is the hashed per-worker accumulator for privatized
//!   reduction over hyper-sparse outputs, where a dense
//!   `out_rows × rank` buffer per worker would dwarf the actual work.

use pasta_core::{Coord, Value};

use crate::microkernel::add_assign;

/// Splits `0..rows_idx.len()` into at most `parts` contiguous ranges that
/// never cut through a run of equal values in `rows_idx` (which must be
/// non-decreasing — the mode-`n` index array of a mode-`n`-outermost-sorted
/// tensor).
///
/// Cuts start at the balanced positions `k·nnz/parts` and advance forward to
/// the next row boundary, so ranges are near-equal for typical row-length
/// distributions and a single giant row degrades to fewer (never incorrect)
/// ranges. Empty ranges are dropped; the concatenation of the returned
/// ranges is exactly `0..rows_idx.len()`.
pub fn owner_ranges(rows_idx: &[Coord], parts: usize) -> Vec<std::ops::Range<usize>> {
    let nnz = rows_idx.len();
    let parts = parts.max(1);
    debug_assert!(rows_idx.windows(2).all(|w| w[0] <= w[1]), "owner_ranges needs sorted rows");
    let mut ranges = Vec::with_capacity(parts);
    let mut start = 0usize;
    for k in 1..=parts {
        if start >= nnz {
            break;
        }
        let mut cut = if k == parts { nnz } else { (k * nnz / parts).max(start) };
        // Advance to the next row boundary so no row straddles two ranges.
        while cut < nnz && cut > 0 && rows_idx[cut] == rows_idx[cut - 1] {
            cut += 1;
        }
        if cut > start {
            ranges.push(start..cut);
            start = cut;
        }
    }
    ranges
}

/// An open-addressing hash accumulator mapping output rows to `rank`-wide
/// value blocks.
///
/// Used as the per-worker private buffer of the privatized-sparse MTTKRP
/// strategy: capacity scales with the rows a worker actually touches, not
/// the mode dimension. Keys are row indices (`u32::MAX` is the empty
/// sentinel — mode dimensions are bounded by `Coord::MAX` so no valid row
/// collides with it); probing is linear; the table rehashes at 7/8 load.
#[derive(Debug)]
pub struct SparseAcc<V> {
    keys: Vec<u32>,
    vals: Vec<V>,
    rank: usize,
    len: usize,
}

const EMPTY: u32 = u32::MAX;

impl<V: Value> SparseAcc<V> {
    /// Creates an accumulator for `rank`-wide rows with room for about
    /// `expected_rows` distinct rows before the first rehash.
    pub fn new(rank: usize, expected_rows: usize) -> Self {
        let cap = (expected_rows.max(4) * 8 / 7 + 1).next_power_of_two();
        Self { keys: vec![EMPTY; cap], vals: vec![V::ZERO; cap * rank], rank, len: 0 }
    }

    /// The number of distinct rows touched.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no rows were touched.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The accumulator's memory footprint in bytes (keys + values).
    pub fn bytes(&self) -> usize {
        self.keys.len() * std::mem::size_of::<u32>() + self.vals.len() * V::BYTES
    }

    #[inline]
    fn slot(&self, row: u32) -> usize {
        // Fibonacci multiplicative hash: spreads clustered row indices
        // across the power-of-two table.
        let h = (row as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> (64 - self.keys.len().trailing_zeros())) as usize
    }

    /// Returns the `rank`-wide accumulator block for `row`, inserting a
    /// zeroed block on first touch.
    pub fn row_mut(&mut self, row: u32) -> &mut [V] {
        debug_assert_ne!(row, EMPTY);
        if (self.len + 1) * 8 > self.keys.len() * 7 {
            self.grow();
        }
        let mask = self.keys.len() - 1;
        let mut i = self.slot(row);
        loop {
            let k = self.keys[i];
            if k == row {
                break;
            }
            if k == EMPTY {
                self.keys[i] = row;
                self.len += 1;
                break;
            }
            i = (i + 1) & mask;
        }
        &mut self.vals[i * self.rank..(i + 1) * self.rank]
    }

    fn grow(&mut self) {
        let old_keys = std::mem::replace(&mut self.keys, vec![EMPTY; 0]);
        let old_vals = std::mem::take(&mut self.vals);
        let cap = (old_keys.len() * 2).max(8);
        self.keys = vec![EMPTY; cap];
        self.vals = vec![V::ZERO; cap * self.rank];
        self.len = 0;
        for (i, &k) in old_keys.iter().enumerate() {
            if k != EMPTY {
                let block = &old_vals[i * self.rank..(i + 1) * self.rank];
                self.row_mut(k).copy_from_slice(block);
            }
        }
    }

    /// Folds `other` into `self` row-by-row (the tree-reduction merge).
    pub fn merge(&mut self, other: &SparseAcc<V>) {
        debug_assert_eq!(self.rank, other.rank);
        for (i, &k) in other.keys.iter().enumerate() {
            if k != EMPTY {
                let src = &other.vals[i * other.rank..(i + 1) * other.rank];
                add_assign(self.row_mut(k), src);
            }
        }
    }

    /// Adds every accumulated row into the dense output (row-major,
    /// `rank` columns).
    pub fn drain_into(&self, out: &mut [V]) {
        for (i, &k) in self.keys.iter().enumerate() {
            if k != EMPTY {
                let src = &self.vals[i * self.rank..(i + 1) * self.rank];
                let dst = &mut out[k as usize * self.rank..(k as usize + 1) * self.rank];
                add_assign(dst, src);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_ranges_partition_and_align() {
        let rows: Vec<Coord> = vec![0, 0, 0, 1, 1, 2, 2, 2, 2, 3, 5, 5];
        for parts in 1..=8 {
            let rs = owner_ranges(&rows, parts);
            // Exact partition of 0..nnz.
            let mut cursor = 0;
            for r in &rs {
                assert_eq!(r.start, cursor);
                cursor = r.end;
            }
            assert_eq!(cursor, rows.len());
            // No row straddles a boundary.
            for r in &rs {
                if r.start > 0 {
                    assert_ne!(rows[r.start], rows[r.start - 1], "parts={parts} range={r:?}");
                }
            }
            assert!(rs.len() <= parts);
        }
    }

    #[test]
    fn owner_ranges_single_giant_row() {
        let rows = vec![7u32; 100];
        let rs = owner_ranges(&rows, 4);
        assert_eq!(rs, vec![0..100]);
    }

    #[test]
    fn owner_ranges_empty() {
        assert!(owner_ranges(&[], 4).is_empty());
    }

    #[test]
    fn sparse_acc_accumulates_and_grows() {
        let mut acc = SparseAcc::<f64>::new(3, 2);
        // Insert far more rows than the initial capacity to force rehashes.
        for pass in 0..2 {
            for row in 0..200u32 {
                let block = acc.row_mut(row * 1000);
                for (j, b) in block.iter_mut().enumerate() {
                    *b += (row as f64) + j as f64 + pass as f64;
                }
            }
        }
        assert_eq!(acc.len(), 200);
        let mut out = vec![0.0f64; 200_000 * 3];
        acc.drain_into(&mut out);
        for row in 0..200usize {
            for j in 0..3 {
                let want = 2.0 * row as f64 + 2.0 * j as f64 + 1.0;
                assert_eq!(out[row * 1000 * 3 + j], want, "row={row} j={j}");
            }
        }
    }

    #[test]
    fn sparse_acc_merge_matches_single() {
        let mut a = SparseAcc::<f32>::new(2, 4);
        let mut b = SparseAcc::<f32>::new(2, 4);
        for row in 0..50u32 {
            a.row_mut(row)[0] += row as f32;
            b.row_mut(row * 2)[1] += 1.0;
        }
        assert!(!a.is_empty());
        assert!(a.bytes() > 0);
        a.merge(&b);
        let mut out = vec![0.0f32; 100 * 2];
        a.drain_into(&mut out);
        for row in 0..50usize {
            assert_eq!(out[row * 2], row as f32);
            assert_eq!(out[row * 2 * 2 + 1], 1.0);
        }
    }
}
