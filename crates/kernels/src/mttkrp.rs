//! MTTKRP — matricized tensor times Khatri-Rao product (Section II-E,
//! Algorithm 3).
//!
//! For mode `n` of an `N`th-order tensor with factor matrices
//! `U⁽¹⁾ … U⁽ᴺ⁾` (common rank `R`):
//!
//! `Ã(i_n, r) = Σ_x val(x) · ∏_{m≠n} U⁽ᵐ⁾(i_m, r)`
//!
//! The Khatri-Rao product is never materialized — it is fused into the
//! sparse traversal, as all practical implementations do. Both formats
//! parallelize *without atomics* on the output, using one of two
//! contention-free schedules picked by the cost model in
//! [`analysis`](crate::analysis):
//!
//! - **owner-computes** — when the entries are sorted with mode `n`
//!   outermost (COO: [`SortState`](pasta_core::SortState); HiCOO: monotone
//!   mode-`n` block indices), non-zeros are cut into fiber-aligned ranges
//!   ([`owner_ranges`]) so each output row is written by exactly one
//!   thread. Bit-identical to the sequential kernel.
//! - **privatized reduction** — otherwise, each worker accumulates into a
//!   private buffer (dense, or a hashed [`SparseAcc`] for hyper-sparse
//!   outputs) over a static non-zero chunk. Dense buffers merge through the
//!   LLC-tiled reduction in `merge_privatized_dense` (destination tile stays
//!   cache-resident across all buffers); sparse accumulators tree-merge on
//!   the pool via [`tree_reduce`]. Both are deterministic for a fixed
//!   thread count; they differ from sequential only by floating-point
//!   association (ULP-level).
//!
//! The inner rank loops run through the unrolled
//! [`microkernel`](crate::microkernel)s. Per-strategy work counters are
//! kept under the `mttkrp.*` names of the unified [`pasta_obs`] registry.

use crate::analysis::{choose_mttkrp_strategy_with, MttkrpSchedParams, MttkrpStrategy};
use crate::microkernel::{add_assign, mul_assign, prefetch_read};
use crate::pipeline::{owner_ranges, SparseAcc};
use crate::pipeline::{Ctx, StrategyChoice};
use pasta_core::sort::mode_first_order;
use pasta_core::{CooTensor, Coord, DenseMatrix, Error, HiCooTensor, Result, Shape, Value};
use pasta_obs::{counters, instant, span, span_detail, CounterId};
use pasta_par::{parallel_for, tree_reduce, Schedule, SharedSlice};

/// How many entries ahead the accumulation loops prefetch the factor rows
/// the Khatri-Rao product will gather. The row indices come from the sparse
/// index columns, so the hardware stride prefetcher cannot follow them.
const PF_DIST: usize = 8;

fn check_factors<V: Value>(shape: &Shape, factors: &[DenseMatrix<V>], n: usize) -> Result<usize> {
    shape.check_mode(n)?;
    if factors.len() != shape.order() {
        return Err(Error::OperandMismatch {
            what: format!("expected {} factor matrices, got {}", shape.order(), factors.len()),
        });
    }
    let r = factors[0].cols();
    for (m, f) in factors.iter().enumerate() {
        if f.cols() == 0 {
            return Err(Error::OperandMismatch {
                what: format!("factor {m} has rank 0; rank must be at least 1"),
            });
        }
        if f.cols() != r {
            return Err(Error::OperandMismatch {
                what: format!("factor {m} has rank {} but factor 0 has rank {r}", f.cols()),
            });
        }
        if f.rows() != shape.dim(m) as usize {
            return Err(Error::OperandMismatch {
                what: format!(
                    "factor {m} has {} rows but mode {m} has dimension {}",
                    f.rows(),
                    shape.dim(m)
                ),
            });
        }
    }
    Ok(r)
}

/// What a traced MTTKRP execution actually did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MttkrpRun {
    /// The schedule that ran.
    pub strategy: MttkrpStrategy,
    /// Whether a plan re-sorted its tensor copy to enable owner-computes.
    pub resorted: bool,
}

/// Resolves the requested [`StrategyChoice`] against what the data permits.
///
/// `rows_sorted` must be true only if the mode-`n` row stream is known
/// non-decreasing. A forced `Owner` on unsorted rows falls back to
/// privatization (owner-computes would race); a forced `Privatized` picks
/// dense vs. sparse from the cost model.
fn resolve_strategy(ctx: &Ctx, p: &MttkrpSchedParams, rows_sorted: bool) -> MttkrpStrategy {
    if p.threads <= 1 || p.nnz <= 1 {
        return MttkrpStrategy::Sequential;
    }
    let threshold = ctx.dense_threshold();
    match ctx.mttkrp {
        StrategyChoice::Auto => choose_mttkrp_strategy_with(p, threshold),
        StrategyChoice::Owner if rows_sorted => MttkrpStrategy::Owner,
        StrategyChoice::Owner | StrategyChoice::Privatized => {
            match choose_mttkrp_strategy_with(
                &MttkrpSchedParams { mode_outermost_sorted: false, ..*p },
                threshold,
            ) {
                MttkrpStrategy::Sequential => MttkrpStrategy::Sequential,
                s => s,
            }
        }
    }
}

/// COO-MTTKRP: `Ã ← X₍ₙ₎ (U⁽ᴺ⁾ ⊙ ⋯ ⊙ U⁽ⁿ⁺¹⁾ ⊙ U⁽ⁿ⁻¹⁾ ⊙ ⋯ ⊙ U⁽¹⁾)`.
///
/// Atomic-free: parallel contexts run owner-computes when the tensor is
/// sorted mode-`n` outermost and privatized reduction otherwise (see the
/// module docs). Use [`mttkrp_coo_traced`] to learn which strategy ran, or
/// [`MttkrpCooPlan`] to amortize a mode-`n` re-sort across executions.
///
/// # Errors
///
/// Returns [`Error::OperandMismatch`] for inconsistent factor matrices.
///
/// # Examples
///
/// ```
/// use pasta_core::{CooTensor, DenseMatrix, Shape};
/// use pasta_kernels::{mttkrp_coo, Ctx};
///
/// # fn main() -> Result<(), pasta_core::Error> {
/// let x = CooTensor::from_entries(Shape::new(vec![2, 2, 2]), vec![(vec![1, 0, 1], 2.0_f32)])?;
/// let ones = DenseMatrix::from_fn(2, 4, |_, _| 1.0_f32);
/// let factors = vec![ones.clone(), ones.clone(), ones];
/// let a = mttkrp_coo(&x, &factors, 0, &Ctx::sequential())?;
/// assert_eq!(a.row(1), &[2.0, 2.0, 2.0, 2.0]);
/// # Ok(())
/// # }
/// ```
pub fn mttkrp_coo<V: Value>(
    x: &CooTensor<V>,
    factors: &[DenseMatrix<V>],
    n: usize,
    ctx: &Ctx,
) -> Result<DenseMatrix<V>> {
    mttkrp_coo_traced(x, factors, n, ctx).map(|(out, _)| out)
}

/// [`mttkrp_coo`] plus a report of the schedule that ran.
///
/// # Errors
///
/// Returns [`Error::OperandMismatch`] for inconsistent factor matrices.
pub fn mttkrp_coo_traced<V: Value>(
    x: &CooTensor<V>,
    factors: &[DenseMatrix<V>],
    n: usize,
    ctx: &Ctx,
) -> Result<(DenseMatrix<V>, MttkrpRun)> {
    let r = check_factors(x.shape(), factors, n)?;
    let rows = x.shape().dim(n) as usize;
    let mut out = DenseMatrix::zeros(rows, r);
    if x.nnz() == 0 {
        return Ok((out, MttkrpRun { strategy: MttkrpStrategy::Sequential, resorted: false }));
    }

    let sorted = x.sort_state().outermost() == Some(n)
        || (ctx.mttkrp == StrategyChoice::Owner && is_non_decreasing(x.mode_inds(n)));
    let p = MttkrpSchedParams {
        nnz: x.nnz(),
        out_rows: rows,
        rank: r,
        threads: ctx.threads,
        mode_outermost_sorted: sorted,
    };
    let strategy = resolve_strategy(ctx, &p, sorted);

    let c = counters();
    let _span =
        span_detail("kernel", "mttkrp.coo", strategy.label(), x.nnz() as u64, r as u64, n as u64);
    match strategy {
        MttkrpStrategy::Sequential => {
            c.add(CounterId::MttkrpSequentialNnz, x.nnz() as u64);
            coo_range(x, factors, n, r, 0..x.nnz(), out.as_mut_slice());
        }
        MttkrpStrategy::Owner => {
            c.add(CounterId::MttkrpOwnerNnz, x.nnz() as u64);
            let ranges = owner_ranges(x.mode_inds(n), ctx.threads);
            let shared = SharedSlice::new(out.as_mut_slice());
            parallel_for(ranges.len(), ctx.threads, Schedule::Static, |ks| {
                for k in ks {
                    let range = ranges[k].clone();
                    let lo = x.mode_inds(n)[range.start] as usize;
                    let hi = x.mode_inds(n)[range.end - 1] as usize;
                    // SAFETY: owner_ranges cuts at row boundaries, so the
                    // row span [lo, hi] of this range is disjoint from
                    // every other range's span.
                    let rows_out = unsafe { shared.slice_mut(lo * r..(hi + 1) * r) };
                    coo_range_offset(x, factors, n, r, range, rows_out, lo);
                }
            });
        }
        MttkrpStrategy::PrivatizedDense => {
            c.add(CounterId::MttkrpPrivatizedNnz, x.nnz() as u64);
            let bufs = privatized_fill(
                ctx.threads,
                x.nnz(),
                || vec![V::ZERO; rows * r],
                |buf, chunk| {
                    coo_range(x, factors, n, r, chunk, buf);
                },
            );
            merge_privatized_dense(out.as_mut_slice(), &bufs, ctx.threads);
        }
        MttkrpStrategy::PrivatizedSparse => {
            c.add(CounterId::MttkrpPrivatizedNnz, x.nnz() as u64);
            let per_worker = (x.nnz() / ctx.threads.max(1) + 1).min(rows);
            let bufs = privatized_fill(
                ctx.threads,
                x.nnz(),
                || SparseAcc::<V>::new(r, per_worker),
                |acc, chunk| {
                    let mut tmp = vec![V::ZERO; r];
                    let end = chunk.end;
                    for xx in chunk {
                        let ahead = xx + PF_DIST;
                        if ahead < end {
                            for (m, f) in factors.iter().enumerate() {
                                if m != n {
                                    prefetch_read(f.as_slice(), x.mode_inds(m)[ahead] as usize * r);
                                }
                            }
                        }
                        khatri_rao_row(x, factors, n, xx, &mut tmp);
                        add_assign(acc.row_mut(x.mode_inds(n)[xx]), &tmp);
                    }
                },
            );
            let _merge = span("kernel", "mttkrp.merge");
            let merged = tree_reduce(bufs, ctx.threads, |dst, src| {
                counters().add(CounterId::MttkrpMergeBytes, src.bytes() as u64);
                dst.merge(&src);
            });
            if let Some(m) = merged {
                m.drain_into(out.as_mut_slice());
            }
        }
    }
    Ok((out, MttkrpRun { strategy, resorted: false }))
}

fn is_non_decreasing(a: &[Coord]) -> bool {
    a.windows(2).all(|w| w[0] <= w[1])
}

/// Runs `fill` on `participants` static chunks of `0..nnz`, each into its
/// own freshly `init`-ed private buffer, and returns the buffers in
/// participant order.
fn privatized_fill<B, Init, Fill>(participants: usize, nnz: usize, init: Init, fill: Fill) -> Vec<B>
where
    B: Send,
    Init: Fn() -> B + Sync,
    Fill: Fn(&mut B, std::ops::Range<usize>) + Sync,
{
    let t = participants.max(1).min(nnz);
    let per = nnz / t;
    let rem = nnz % t;
    let mut bufs: Vec<Option<B>> = (0..t).map(|_| None).collect();
    {
        let slots = SharedSlice::new(&mut bufs);
        parallel_for(t, t, Schedule::Static, |ids| {
            for id in ids {
                let start = id * per + id.min(rem);
                let len = per + usize::from(id < rem);
                let mut buf = init();
                fill(&mut buf, start..start + len);
                // SAFETY: participant ids partition 0..t, one slot each.
                unsafe { slots.write(id, Some(buf)) };
            }
        });
    }
    bufs.into_iter().map(|b| b.expect("participant wrote its buffer")).collect()
}

/// Merges per-worker dense accumulators into the (zeroed) output, tiled for
/// LLC residency.
///
/// The naive pairwise tree-reduce streams whole `rows × R` buffers through
/// the cache once per tree level: for outputs larger than the LLC every
/// level re-misses the full working set. Here the output is cut into tiles
/// sized by the working-set model in [`merge_tile_len`] (destination tile +
/// one streaming source tile within half the LLC), and each tile accumulates
/// *all* buffers before the next tile starts, so the destination stays
/// resident across the whole reduction depth.
///
/// Buffers are applied in participant order regardless of which worker owns
/// a tile, so the result is deterministic for a fixed participant count —
/// the same contract the tree-reduce had.
fn merge_privatized_dense<V: Value>(out: &mut [V], bufs: &[Vec<V>], threads: usize) {
    let len = out.len();
    let _span = span("kernel", "mttkrp.merge");
    counters().add(CounterId::MttkrpMergeBytes, (bufs.len() * len * V::BYTES) as u64);
    let tile = merge_tile_len::<V>();
    let ntiles = len.div_ceil(tile.max(1)).max(1);
    let shared = SharedSlice::new(out);
    parallel_for(ntiles, threads, Schedule::Static, |ts| {
        for t in ts {
            let lo = t * tile;
            let hi = ((t + 1) * tile).min(len);
            // SAFETY: tiles partition `out`; each tile index is visited by
            // exactly one worker.
            let dst = unsafe { shared.slice_mut(lo..hi) };
            for buf in bufs {
                add_assign(dst, &buf[lo..hi]);
            }
        }
    });
}

/// Tile length (in values) for [`merge_privatized_dense`]: the destination
/// tile plus one streaming source tile should fit in half the last-level
/// cache (`2 · tile · BYTES ≤ LLC/2`), leaving the other half for the fill
/// phase's factor rows. The LLC size comes from
/// [`host_llc_bytes`](crate::tune::host_llc_bytes) (`PASTA_LLC_BYTES`
/// override, else a conservative default).
fn merge_tile_len<V: Value>() -> usize {
    (crate::tune::host_llc_bytes() / (4 * V::BYTES)).max(1024)
}

/// Sequential accumulation of `chunk` into `out` (full output slice).
fn coo_range<V: Value>(
    x: &CooTensor<V>,
    factors: &[DenseMatrix<V>],
    n: usize,
    r: usize,
    chunk: std::ops::Range<usize>,
    out: &mut [V],
) {
    coo_range_offset(x, factors, n, r, chunk, out, 0);
}

/// Like [`coo_range`], but `out` starts at output row `row0` (the owner
/// path hands each thread only its own row span).
fn coo_range_offset<V: Value>(
    x: &CooTensor<V>,
    factors: &[DenseMatrix<V>],
    n: usize,
    r: usize,
    chunk: std::ops::Range<usize>,
    out: &mut [V],
    row0: usize,
) {
    let mut tmp = vec![V::ZERO; r];
    let end = chunk.end;
    for xx in chunk {
        let ahead = xx + PF_DIST;
        if ahead < end {
            for (m, f) in factors.iter().enumerate() {
                if m != n {
                    prefetch_read(f.as_slice(), x.mode_inds(m)[ahead] as usize * r);
                }
            }
        }
        khatri_rao_row(x, factors, n, xx, &mut tmp);
        let i = x.mode_inds(n)[xx] as usize - row0;
        add_assign(&mut out[i * r..(i + 1) * r], &tmp);
    }
}

/// Computes `tmp[r] = val · ∏_{m≠n} U⁽ᵐ⁾(i_m, r)` for non-zero `xx`.
#[inline]
fn khatri_rao_row<V: Value>(
    x: &CooTensor<V>,
    factors: &[DenseMatrix<V>],
    n: usize,
    xx: usize,
    tmp: &mut [V],
) {
    tmp.fill(x.vals()[xx]);
    for (m, f) in factors.iter().enumerate() {
        if m != n {
            mul_assign(tmp, f.row(x.mode_inds(m)[xx] as usize));
        }
    }
}

/// A reusable COO-MTTKRP schedule for repeated executions on one tensor.
///
/// Construction may radix re-sort an owned copy of the tensor mode-`n`
/// outermost (one `O(nnz)` pass, when
/// [`resort_pays_off`](crate::analysis::resort_pays_off) says the
/// per-execution privatized merge would cost more), unlocking the
/// owner-computes schedule for every subsequent [`execute`](Self::execute).
#[derive(Debug)]
pub struct MttkrpCooPlan<V> {
    x: CooTensor<V>,
    n: usize,
    ctx: Ctx,
    resorted: bool,
}

impl<V: Value> MttkrpCooPlan<V> {
    /// Builds a plan for mode `n`, re-sorting a copy of `x` if the cost
    /// model finds the sort pays for itself.
    ///
    /// # Errors
    ///
    /// Returns an error if `n` is out of range.
    pub fn new(x: &CooTensor<V>, n: usize, ctx: &Ctx) -> Result<Self> {
        x.shape().check_mode(n)?;
        let mut x = x.clone();
        let mut resorted = false;
        let p = MttkrpSchedParams {
            nnz: x.nnz(),
            out_rows: x.shape().dim(n) as usize,
            rank: 16, // rank is unknown until execute; 16 is the suite default
            threads: ctx.threads,
            mode_outermost_sorted: x.sort_state().outermost() == Some(n),
        };
        if ctx.mttkrp != StrategyChoice::Privatized
            && !p.mode_outermost_sorted
            && (ctx.mttkrp == StrategyChoice::Owner || crate::analysis::resort_pays_off(&p))
        {
            x.sort_by_mode_order_threads(&mode_first_order(x.order(), n), ctx.threads);
            counters().add(CounterId::MttkrpResorts, 1);
            instant("kernel", "mttkrp.resort", "", x.nnz() as u64, n as u64, 0);
            resorted = true;
        }
        Ok(Self { x, n, ctx: *ctx, resorted })
    }

    /// The plan's (possibly re-sorted) tensor.
    pub fn tensor(&self) -> &CooTensor<V> {
        &self.x
    }

    /// Whether construction re-sorted the tensor copy.
    pub fn resorted(&self) -> bool {
        self.resorted
    }

    /// Runs the MTTKRP for the planned mode.
    ///
    /// # Errors
    ///
    /// Returns [`Error::OperandMismatch`] for inconsistent factor matrices.
    pub fn execute(&self, factors: &[DenseMatrix<V>]) -> Result<(DenseMatrix<V>, MttkrpRun)> {
        let (out, run) = mttkrp_coo_traced(&self.x, factors, self.n, &self.ctx)?;
        Ok((out, MttkrpRun { resorted: self.resorted, ..run }))
    }
}

/// HiCOO-MTTKRP (Algorithm 3): parallel over tensor blocks, atomic-free.
///
/// Within a block, factor accesses go through per-block sub-matrix bases
/// (`A_b = A + bi·B·R` etc.), so rows are addressed by the 8-bit element
/// indices alone — the locality HiCOO is designed for. Across blocks, the
/// same two contention-free schedules as [`mttkrp_coo`] apply: blocks are
/// cut at mode-`n` block-index boundaries when those are monotone (owner-
/// computes; Morton order guarantees this for mode 0), else each worker
/// privatizes over its block chunk and the buffers tree-merge.
///
/// # Errors
///
/// Returns [`Error::OperandMismatch`] for inconsistent factor matrices.
pub fn mttkrp_hicoo<V: Value>(
    x: &HiCooTensor<V>,
    factors: &[DenseMatrix<V>],
    n: usize,
    ctx: &Ctx,
) -> Result<DenseMatrix<V>> {
    mttkrp_hicoo_traced(x, factors, n, ctx).map(|(out, _)| out)
}

/// [`mttkrp_hicoo`] plus a report of the schedule that ran.
///
/// # Errors
///
/// Returns [`Error::OperandMismatch`] for inconsistent factor matrices.
pub fn mttkrp_hicoo_traced<V: Value>(
    x: &HiCooTensor<V>,
    factors: &[DenseMatrix<V>],
    n: usize,
    ctx: &Ctx,
) -> Result<(DenseMatrix<V>, MttkrpRun)> {
    let r = check_factors(x.shape(), factors, n)?;
    let rows = x.shape().dim(n) as usize;
    let mut out = DenseMatrix::zeros(rows, r);
    if x.nnz() == 0 {
        return Ok((out, MttkrpRun { strategy: MttkrpStrategy::Sequential, resorted: false }));
    }

    let sorted = x.mode_binds_monotone(n);
    let p = MttkrpSchedParams {
        nnz: x.nnz(),
        out_rows: rows,
        rank: r,
        threads: ctx.threads,
        mode_outermost_sorted: sorted,
    };
    let strategy = resolve_strategy(ctx, &p, sorted);

    let c = counters();
    let _span =
        span_detail("kernel", "mttkrp.hicoo", strategy.label(), x.nnz() as u64, r as u64, n as u64);
    match strategy {
        MttkrpStrategy::Sequential => {
            c.add(CounterId::MttkrpSequentialNnz, x.nnz() as u64);
            hicoo_blocks(x, factors, n, r, 0..x.num_blocks(), out.as_mut_slice());
        }
        MttkrpStrategy::Owner => {
            c.add(CounterId::MttkrpOwnerNnz, x.nnz() as u64);
            // Cut block ranges where binds[n] changes: all entries of a
            // binds[n] group share the same output row window, so groups
            // are write-disjoint.
            let ranges = owner_ranges(x.mode_binds(n), ctx.threads);
            let shared = SharedSlice::new(out.as_mut_slice());
            let bits = x.block_bits();
            parallel_for(ranges.len(), ctx.threads, Schedule::Static, |ks| {
                for k in ks {
                    let blocks = ranges[k].clone();
                    let lo = (x.mode_binds(n)[blocks.start] as usize) << bits;
                    let hi = (((x.mode_binds(n)[blocks.end - 1] as usize) + 1) << bits).min(rows);
                    // SAFETY: ranges split at binds[n] boundaries, so the
                    // row windows [bind<<bits, (bind+1)<<bits) covered by
                    // this range belong to it alone.
                    let rows_out = unsafe { shared.slice_mut(lo * r..hi * r) };
                    hicoo_blocks_offset(x, factors, n, r, blocks, rows_out, lo);
                }
            });
        }
        MttkrpStrategy::PrivatizedDense | MttkrpStrategy::PrivatizedSparse => {
            // Blocks (not raw nnz) are the distribution unit, so both
            // privatized flavors chunk block ranges; hyper-sparse outputs
            // still get the dense buffer because HiCOO mode dims are
            // bounded by binds·2^bits in practice. Counted as dense.
            c.add(CounterId::MttkrpPrivatizedNnz, x.nnz() as u64);
            let bufs = privatized_fill(
                ctx.threads,
                x.num_blocks(),
                || vec![V::ZERO; rows * r],
                |buf, blocks| hicoo_blocks(x, factors, n, r, blocks, buf),
            );
            merge_privatized_dense(out.as_mut_slice(), &bufs, ctx.threads);
        }
    }
    let strategy =
        if strategy.is_privatized() { MttkrpStrategy::PrivatizedDense } else { strategy };
    Ok((out, MttkrpRun { strategy, resorted: false }))
}

/// Sequential accumulation of a block range into `out` (full output).
fn hicoo_blocks<V: Value>(
    x: &HiCooTensor<V>,
    factors: &[DenseMatrix<V>],
    n: usize,
    r: usize,
    blocks: std::ops::Range<usize>,
    out: &mut [V],
) {
    hicoo_blocks_offset(x, factors, n, r, blocks, out, 0);
}

fn hicoo_blocks_offset<V: Value>(
    x: &HiCooTensor<V>,
    factors: &[DenseMatrix<V>],
    n: usize,
    r: usize,
    blocks: std::ops::Range<usize>,
    out: &mut [V],
    row0: usize,
) {
    let order = x.order();
    let bits = x.block_bits();
    let mut tmp = vec![V::ZERO; r];
    let mut bases = vec![0usize; order];
    for b in blocks {
        for (m, base) in bases.iter_mut().enumerate() {
            *base = (x.mode_binds(m)[b] as usize) << bits;
        }
        let be = x.block_range(b).end;
        for xx in x.block_range(b) {
            let ahead = xx + PF_DIST;
            if ahead < be {
                // Within a block the per-mode row window is bases[m] + eind,
                // so the gathered rows are prefetchable the same way.
                for (m, f) in factors.iter().enumerate() {
                    if m != n {
                        let row = bases[m] + x.mode_einds(m)[ahead] as usize;
                        prefetch_read(f.as_slice(), row * r);
                    }
                }
            }
            tmp.fill(x.vals()[xx]);
            for (m, f) in factors.iter().enumerate() {
                if m != n {
                    mul_assign(&mut tmp, f.row(bases[m] + x.mode_einds(m)[xx] as usize));
                }
            }
            let i = bases[n] + x.mode_einds(n)[xx] as usize - row0;
            add_assign(&mut out[i * r..(i + 1) * r], &tmp);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense_ref::mttkrp_dense;

    fn sample() -> CooTensor<f64> {
        CooTensor::from_entries(
            Shape::new(vec![4, 5, 6]),
            vec![
                (vec![0, 0, 0], 1.0),
                (vec![0, 0, 5], 2.0),
                (vec![1, 2, 3], 3.0),
                (vec![3, 4, 1], 4.0),
                (vec![3, 4, 2], 5.0),
                (vec![2, 1, 0], -1.0),
            ],
        )
        .unwrap()
    }

    fn factors_for(x: &CooTensor<f64>, r: usize) -> Vec<DenseMatrix<f64>> {
        (0..x.order())
            .map(|m| {
                DenseMatrix::from_fn(x.shape().dim(m) as usize, r, |i, j| {
                    ((i + 1) as f64 * 0.3 + (j + m) as f64 * 0.7).sin()
                })
            })
            .collect()
    }

    fn assert_mat_eq(a: &DenseMatrix<f64>, b: &DenseMatrix<f64>, tol: f64) {
        assert_eq!(a.rows(), b.rows());
        assert_eq!(a.cols(), b.cols());
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!(x.approx_eq(*y, tol), "{x} vs {y}");
        }
    }

    fn bigger() -> CooTensor<f64> {
        let entries: Vec<(Vec<u32>, f64)> = (0..30_000u32)
            .map(|i| (vec![i % 16, (i / 16) % 64, (i * 13) % 64], 1.0 + (i % 7) as f64))
            .collect();
        let mut x = CooTensor::from_entries(Shape::new(vec![16, 64, 64]), entries).unwrap();
        x.dedup_sum();
        x
    }

    #[test]
    fn coo_matches_dense_every_mode() {
        let x = sample();
        let fs = factors_for(&x, 3);
        for n in 0..3 {
            let got = mttkrp_coo(&x, &fs, n, &Ctx::sequential()).unwrap();
            let want = mttkrp_dense(&x, &fs, n).unwrap();
            assert_mat_eq(&got, &want, 1e-12);
        }
    }

    #[test]
    fn hicoo_matches_dense_every_mode() {
        let x = sample();
        let fs = factors_for(&x, 3);
        let h = HiCooTensor::from_coo(&x, 2).unwrap();
        for n in 0..3 {
            let got = mttkrp_hicoo(&h, &fs, n, &Ctx::sequential()).unwrap();
            let want = mttkrp_dense(&x, &fs, n).unwrap();
            assert_mat_eq(&got, &want, 1e-12);
        }
    }

    #[test]
    fn parallel_strategies_match_sequential() {
        let x = bigger();
        let fs = factors_for(&x, 8);
        for n in 0..3 {
            let seq = mttkrp_coo(&x, &fs, n, &Ctx::sequential()).unwrap();
            let par =
                mttkrp_coo(&x, &fs, n, &Ctx::new(8, pasta_par::Schedule::Dynamic(128))).unwrap();
            assert_mat_eq(&par, &seq, 1e-9);

            let h = HiCooTensor::from_coo(&x, 8).unwrap();
            let hpar = mttkrp_hicoo(&h, &fs, n, &Ctx::new(8, pasta_par::Schedule::Guided)).unwrap();
            assert_mat_eq(&hpar, &seq, 1e-9);
        }
    }

    #[test]
    fn owner_computes_is_bit_identical() {
        let mut x = bigger();
        let fs = factors_for(&x, 8);
        let seq = mttkrp_coo(&x, &fs, 1, &Ctx::sequential()).unwrap();
        x.sort_by_mode_order(&[1, 0, 2]);
        assert_eq!(x.sort_state().outermost(), Some(1));
        let seq_sorted = mttkrp_coo(&x, &fs, 1, &Ctx::sequential()).unwrap();
        let (own, run) =
            mttkrp_coo_traced(&x, &fs, 1, &Ctx::new(4, pasta_par::Schedule::Static)).unwrap();
        assert_eq!(run.strategy, MttkrpStrategy::Owner);
        // Bit-identical to sequential on the same (sorted) entry order...
        assert_eq!(own.as_slice(), seq_sorted.as_slice());
        // ...and within tolerance of the unsorted sequential order.
        assert_mat_eq(&own, &seq, 1e-9);
    }

    #[test]
    fn forced_strategies_and_trace() {
        let x = bigger(); // unsorted
        let fs = factors_for(&x, 8);
        let par = Ctx::new(4, pasta_par::Schedule::Static);
        let seq = mttkrp_coo(&x, &fs, 0, &Ctx::sequential()).unwrap();

        let (got, run) =
            mttkrp_coo_traced(&x, &fs, 0, &par.with_mttkrp(StrategyChoice::Privatized)).unwrap();
        assert!(run.strategy.is_privatized());
        assert_mat_eq(&got, &seq, 1e-9);

        // Forcing owner on unsorted (non-monotone) rows falls back.
        let (got, run) =
            mttkrp_coo_traced(&x, &fs, 1, &par.with_mttkrp(StrategyChoice::Owner)).unwrap();
        assert!(run.strategy.is_privatized(), "got {:?}", run.strategy);
        let seq1 = mttkrp_coo(&x, &fs, 1, &Ctx::sequential()).unwrap();
        assert_mat_eq(&got, &seq1, 1e-9);

        // Forcing owner on rows that happen to be monotone works even
        // without a recorded sort state.
        let mut xs = x.clone();
        xs.sort_by_mode_order(&[1, 0, 2]);
        let xs = CooTensor::from_parts(xs.shape().clone(), xs.inds().to_vec(), xs.vals().to_vec())
            .unwrap(); // from_parts drops the sort state
        assert_eq!(xs.sort_state().mode_order(), None);
        let (got, run) =
            mttkrp_coo_traced(&xs, &fs, 1, &par.with_mttkrp(StrategyChoice::Owner)).unwrap();
        assert_eq!(run.strategy, MttkrpStrategy::Owner);
        assert_mat_eq(&got, &seq1, 1e-9);
    }

    #[test]
    fn sparse_accumulator_path() {
        // Hyper-sparse output: few nnz, huge mode dim → sparse privatization.
        let dim = 1_000_000u32;
        let entries: Vec<(Vec<u32>, f64)> = (0..500u32)
            .map(|i| (vec![(i * 7919) % dim, i % 8, (i * 13) % 8], 1.0 + i as f64 * 0.01))
            .collect();
        let mut x = CooTensor::from_entries(Shape::new(vec![dim, 8, 8]), entries).unwrap();
        x.dedup_sum();
        // dedup_sum sorts 0-outermost; test mode 0 owner vs forced privatized.
        let fs: Vec<DenseMatrix<f64>> = (0..3)
            .map(|m| {
                DenseMatrix::from_fn(x.shape().dim(m) as usize, 4, |i, j| {
                    ((i % 97) as f64 * 0.1 + (j + m) as f64).cos()
                })
            })
            .collect();
        let seq = mttkrp_coo(&x, &fs, 0, &Ctx::sequential()).unwrap();
        let ctx = Ctx::new(4, pasta_par::Schedule::Static).with_mttkrp(StrategyChoice::Privatized);
        let (got, run) = mttkrp_coo_traced(&x, &fs, 0, &ctx).unwrap();
        assert_eq!(run.strategy, MttkrpStrategy::PrivatizedSparse);
        assert_mat_eq(&got, &seq, 1e-9);
    }

    #[test]
    fn plan_resorts_and_owner_computes() {
        // Tall mode-1 output with few nnz: resort_pays_off fires.
        let entries: Vec<(Vec<u32>, f64)> =
            (0..64u32).map(|i| (vec![i % 4, (i * 37) % 50_000, i % 4], 1.0 + i as f64)).collect();
        let x = CooTensor::from_entries(Shape::new(vec![4, 50_000, 4]), entries).unwrap();
        let fs: Vec<DenseMatrix<f64>> = (0..3)
            .map(|m| {
                DenseMatrix::from_fn(x.shape().dim(m) as usize, 3, |i, j| {
                    ((i % 13) as f64 + (j + m) as f64 * 0.5).sin()
                })
            })
            .collect();
        let ctx = Ctx::new(4, pasta_par::Schedule::Static);
        pasta_obs::set_counting(true);
        let before = counters().get(CounterId::MttkrpResorts);
        let plan = MttkrpCooPlan::new(&x, 1, &ctx).unwrap();
        assert!(plan.resorted());
        assert_eq!(plan.tensor().sort_state().outermost(), Some(1));
        assert!(counters().get(CounterId::MttkrpResorts) > before);
        let (got, run) = plan.execute(&fs).unwrap();
        assert_eq!(run.strategy, MttkrpStrategy::Owner);
        assert!(run.resorted);
        let seq = mttkrp_coo(&x, &fs, 1, &Ctx::sequential()).unwrap();
        assert_mat_eq(&got, &seq, 1e-9);
    }

    #[test]
    fn empty_tensor_yields_zeros() {
        let x = CooTensor::<f64>::new(Shape::new(vec![3, 4, 5]));
        let fs: Vec<DenseMatrix<f64>> =
            vec![DenseMatrix::zeros(3, 2), DenseMatrix::zeros(4, 2), DenseMatrix::zeros(5, 2)];
        for n in 0..3 {
            let (out, run) = mttkrp_coo_traced(&x, &fs, n, &Ctx::parallel()).unwrap();
            assert_eq!(run.strategy, MttkrpStrategy::Sequential);
            assert_eq!(out.rows(), x.shape().dim(n) as usize);
            assert!(out.as_slice().iter().all(|&v| v == 0.0), "must be zeros, not uninitialized");
        }
        let h = HiCooTensor::from_coo(&x, 2).unwrap();
        let out = mttkrp_hicoo(&h, &fs, 0, &Ctx::parallel()).unwrap();
        assert!(out.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn fourth_order_all_modes() {
        let x = CooTensor::<f64>::from_entries(
            Shape::new(vec![3, 4, 3, 5]),
            vec![
                (vec![0, 1, 2, 0], 1.5),
                (vec![0, 1, 2, 4], 2.0),
                (vec![2, 2, 2, 1], -3.0),
                (vec![1, 3, 0, 2], 0.5),
            ],
        )
        .unwrap();
        let fs = factors_for(&x, 4);
        let h = HiCooTensor::from_coo(&x, 2).unwrap();
        for n in 0..4 {
            let want = mttkrp_dense(&x, &fs, n).unwrap();
            assert_mat_eq(&mttkrp_coo(&x, &fs, n, &Ctx::sequential()).unwrap(), &want, 1e-12);
            assert_mat_eq(&mttkrp_hicoo(&h, &fs, n, &Ctx::sequential()).unwrap(), &want, 1e-12);
        }
    }

    #[test]
    fn hicoo_owner_runs_on_mode0() {
        // Morton block order keeps binds[0] monotone → owner-computes.
        let x = bigger();
        let fs = factors_for(&x, 8);
        let h = HiCooTensor::from_coo(&x, 8).unwrap();
        if h.mode_binds_monotone(0) {
            let (got, run) =
                mttkrp_hicoo_traced(&h, &fs, 0, &Ctx::new(4, pasta_par::Schedule::Static)).unwrap();
            assert_eq!(run.strategy, MttkrpStrategy::Owner);
            let seq = mttkrp_hicoo(&h, &fs, 0, &Ctx::sequential()).unwrap();
            assert_eq!(got.as_slice(), seq.as_slice(), "owner must be bit-identical");
        }
    }

    #[test]
    fn rejects_inconsistent_factors() {
        let x = sample();
        let mut fs = factors_for(&x, 3);
        assert!(mttkrp_coo(&x, &fs[..2], 0, &Ctx::sequential()).is_err());
        fs[1] = DenseMatrix::zeros(5, 2); // wrong rank
        assert!(mttkrp_coo(&x, &fs, 0, &Ctx::sequential()).is_err());
        let mut fs = factors_for(&x, 3);
        fs[2] = DenseMatrix::zeros(7, 3); // wrong rows
        assert!(mttkrp_coo(&x, &fs, 0, &Ctx::sequential()).is_err());
        let fs0 = vec![DenseMatrix::<f64>::zeros(4, 0); 3];
        assert!(mttkrp_coo(&x, &fs0, 0, &Ctx::sequential()).is_err());
        // Rank-0 in a non-leading factor must also be rejected, with the
        // rank-0 error (not a generic mismatch).
        let mut fs = factors_for(&x, 3);
        fs[1] = DenseMatrix::zeros(5, 0);
        let err = mttkrp_coo(&x, &fs, 0, &Ctx::sequential()).unwrap_err();
        assert!(err.to_string().contains("rank 0"), "unexpected error: {err}");
    }

    #[test]
    fn rank_16_paper_setting() {
        let x = sample();
        let fs = factors_for(&x, 16);
        let got = mttkrp_coo(&x, &fs, 1, &Ctx::sequential()).unwrap();
        let want = mttkrp_dense(&x, &fs, 1).unwrap();
        assert_mat_eq(&got, &want, 1e-12);
        assert_eq!(got.cols(), 16);
    }

    #[test]
    fn counters_accumulate() {
        let x = bigger();
        let fs = factors_for(&x, 4);
        pasta_obs::set_counting(true);
        let c = counters();
        let before = c.snapshot();
        mttkrp_coo(&x, &fs, 0, &Ctx::sequential()).unwrap();
        let ctx = Ctx::new(4, pasta_par::Schedule::Static).with_mttkrp(StrategyChoice::Privatized);
        mttkrp_coo(&x, &fs, 0, &ctx).unwrap();
        let after = c.snapshot();
        let d = |id| after[id] - before[id];
        assert!(d(CounterId::MttkrpSequentialNnz) >= x.nnz() as u64);
        assert!(d(CounterId::MttkrpPrivatizedNnz) >= x.nnz() as u64);
        assert!(d(CounterId::MttkrpMergeBytes) > 0);
    }
}
