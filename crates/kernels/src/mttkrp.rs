//! MTTKRP — matricized tensor times Khatri-Rao product (Section II-E,
//! Algorithm 3).
//!
//! For mode `n` of an `N`th-order tensor with factor matrices
//! `U⁽¹⁾ … U⁽ᴺ⁾` (common rank `R`):
//!
//! `Ã(i_n, r) = Σ_x val(x) · ∏_{m≠n} U⁽ᵐ⁾(i_m, r)`
//!
//! The Khatri-Rao product is never materialized — it is fused into the
//! sparse traversal, as all practical implementations do. COO-MTTKRP
//! parallelizes over non-zeros and protects the dense output with atomic
//! adds (the paper's `omp atomic`); HiCOO-MTTKRP parallelizes over tensor
//! blocks, localizing factor accesses to per-block sub-matrices.

use crate::ctx::Ctx;
use pasta_core::{CooTensor, DenseMatrix, Error, HiCooTensor, Result, Shape, Value};
use pasta_par::{parallel_for, Atomically};

fn check_factors<V: Value>(shape: &Shape, factors: &[DenseMatrix<V>], n: usize) -> Result<usize> {
    shape.check_mode(n)?;
    if factors.len() != shape.order() {
        return Err(Error::OperandMismatch {
            what: format!("expected {} factor matrices, got {}", shape.order(), factors.len()),
        });
    }
    let r = factors[0].cols();
    if r == 0 {
        return Err(Error::OperandMismatch { what: "rank must be at least 1".into() });
    }
    for (m, f) in factors.iter().enumerate() {
        if f.cols() != r {
            return Err(Error::OperandMismatch {
                what: format!("factor {m} has rank {} but factor 0 has rank {r}", f.cols()),
            });
        }
        if f.rows() != shape.dim(m) as usize {
            return Err(Error::OperandMismatch {
                what: format!(
                    "factor {m} has {} rows but mode {m} has dimension {}",
                    f.rows(),
                    shape.dim(m)
                ),
            });
        }
    }
    Ok(r)
}

/// COO-MTTKRP: `Ã ← X₍ₙ₎ (U⁽ᴺ⁾ ⊙ ⋯ ⊙ U⁽ⁿ⁺¹⁾ ⊙ U⁽ⁿ⁻¹⁾ ⊙ ⋯ ⊙ U⁽¹⁾)`.
///
/// Sequential contexts use plain accumulation; parallel contexts distribute
/// non-zeros across threads and use atomic adds on the shared output.
///
/// # Errors
///
/// Returns [`Error::OperandMismatch`] for inconsistent factor matrices.
///
/// # Examples
///
/// ```
/// use pasta_core::{CooTensor, DenseMatrix, Shape};
/// use pasta_kernels::{mttkrp_coo, Ctx};
///
/// # fn main() -> Result<(), pasta_core::Error> {
/// let x = CooTensor::from_entries(Shape::new(vec![2, 2, 2]), vec![(vec![1, 0, 1], 2.0_f32)])?;
/// let ones = DenseMatrix::from_fn(2, 4, |_, _| 1.0_f32);
/// let factors = vec![ones.clone(), ones.clone(), ones];
/// let a = mttkrp_coo(&x, &factors, 0, &Ctx::sequential())?;
/// assert_eq!(a.row(1), &[2.0, 2.0, 2.0, 2.0]);
/// # Ok(())
/// # }
/// ```
pub fn mttkrp_coo<V: Value + Atomically>(
    x: &CooTensor<V>,
    factors: &[DenseMatrix<V>],
    n: usize,
    ctx: &Ctx,
) -> Result<DenseMatrix<V>> {
    let r = check_factors(x.shape(), factors, n)?;
    let order = x.order();
    let mut out = DenseMatrix::zeros(x.shape().dim(n) as usize, r);

    if ctx.is_sequential() {
        let mut tmp = vec![V::ZERO; r];
        for xx in 0..x.nnz() {
            accumulate_row(x, factors, n, order, xx, &mut tmp);
            let row = out.row_mut(x.mode_inds(n)[xx] as usize);
            for (o, &t) in row.iter_mut().zip(&tmp) {
                *o += t;
            }
        }
        return Ok(out);
    }

    let cells = V::as_atomics(out.as_mut_slice());
    parallel_for(x.nnz(), ctx.threads, ctx.schedule, |range| {
        let mut tmp = vec![V::ZERO; r];
        for xx in range {
            accumulate_row(x, factors, n, order, xx, &mut tmp);
            let base = x.mode_inds(n)[xx] as usize * r;
            for (rr, &t) in tmp.iter().enumerate() {
                V::atomic_add(&cells[base + rr], t);
            }
        }
    });
    Ok(out)
}

/// Computes `tmp[r] = val · ∏_{m≠n} U⁽ᵐ⁾(i_m, r)` for non-zero `xx`.
#[inline]
fn accumulate_row<V: Value>(
    x: &CooTensor<V>,
    factors: &[DenseMatrix<V>],
    n: usize,
    order: usize,
    xx: usize,
    tmp: &mut [V],
) {
    let val = x.vals()[xx];
    tmp.fill(val);
    for m in 0..order {
        if m == n {
            continue;
        }
        let row = factors[m].row(x.mode_inds(m)[xx] as usize);
        for (t, &u) in tmp.iter_mut().zip(row) {
            *t *= u;
        }
    }
}

/// HiCOO-MTTKRP (Algorithm 3): parallel over tensor blocks.
///
/// Within a block, factor accesses go through per-block sub-matrix bases
/// (`A_b = A + bi·B·R` etc.), so rows are addressed by the 8-bit element
/// indices alone — the locality HiCOO is designed for. Because distinct
/// blocks can still touch the same output rows, parallel contexts use
/// atomic adds.
///
/// # Errors
///
/// Returns [`Error::OperandMismatch`] for inconsistent factor matrices.
pub fn mttkrp_hicoo<V: Value + Atomically>(
    x: &HiCooTensor<V>,
    factors: &[DenseMatrix<V>],
    n: usize,
    ctx: &Ctx,
) -> Result<DenseMatrix<V>> {
    let r = check_factors(x.shape(), factors, n)?;
    let order = x.order();
    let bits = x.block_bits();
    let mut out = DenseMatrix::zeros(x.shape().dim(n) as usize, r);

    if ctx.is_sequential() {
        let mut tmp = vec![V::ZERO; r];
        for b in 0..x.num_blocks() {
            let bases: Vec<usize> =
                (0..order).map(|m| (x.mode_binds(m)[b] as usize) << bits).collect();
            for xx in x.block_range(b) {
                hicoo_row(x, factors, n, order, &bases, xx, &mut tmp);
                let i = bases[n] + x.mode_einds(n)[xx] as usize;
                let row = out.row_mut(i);
                for (o, &t) in row.iter_mut().zip(&tmp) {
                    *o += t;
                }
            }
        }
        return Ok(out);
    }

    let cells = V::as_atomics(out.as_mut_slice());
    parallel_for(x.num_blocks(), ctx.threads, ctx.schedule, |blocks| {
        let mut tmp = vec![V::ZERO; r];
        for b in blocks {
            let bases: Vec<usize> =
                (0..order).map(|m| (x.mode_binds(m)[b] as usize) << bits).collect();
            for xx in x.block_range(b) {
                hicoo_row(x, factors, n, order, &bases, xx, &mut tmp);
                let i = bases[n] + x.mode_einds(n)[xx] as usize;
                for (rr, &t) in tmp.iter().enumerate() {
                    V::atomic_add(&cells[i * r + rr], t);
                }
            }
        }
    });
    Ok(out)
}

#[inline]
fn hicoo_row<V: Value>(
    x: &HiCooTensor<V>,
    factors: &[DenseMatrix<V>],
    n: usize,
    order: usize,
    bases: &[usize],
    xx: usize,
    tmp: &mut [V],
) {
    let val = x.vals()[xx];
    tmp.fill(val);
    for m in 0..order {
        if m == n {
            continue;
        }
        let row = factors[m].row(bases[m] + x.mode_einds(m)[xx] as usize);
        for (t, &u) in tmp.iter_mut().zip(row) {
            *t *= u;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense_ref::mttkrp_dense;

    fn sample() -> CooTensor<f64> {
        CooTensor::from_entries(
            Shape::new(vec![4, 5, 6]),
            vec![
                (vec![0, 0, 0], 1.0),
                (vec![0, 0, 5], 2.0),
                (vec![1, 2, 3], 3.0),
                (vec![3, 4, 1], 4.0),
                (vec![3, 4, 2], 5.0),
                (vec![2, 1, 0], -1.0),
            ],
        )
        .unwrap()
    }

    fn factors_for(x: &CooTensor<f64>, r: usize) -> Vec<DenseMatrix<f64>> {
        (0..x.order())
            .map(|m| {
                DenseMatrix::from_fn(x.shape().dim(m) as usize, r, |i, j| {
                    ((i + 1) as f64 * 0.3 + (j + m) as f64 * 0.7).sin()
                })
            })
            .collect()
    }

    fn assert_mat_eq(a: &DenseMatrix<f64>, b: &DenseMatrix<f64>, tol: f64) {
        assert_eq!(a.rows(), b.rows());
        assert_eq!(a.cols(), b.cols());
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!(x.approx_eq(*y, tol), "{x} vs {y}");
        }
    }

    #[test]
    fn coo_matches_dense_every_mode() {
        let x = sample();
        let fs = factors_for(&x, 3);
        for n in 0..3 {
            let got = mttkrp_coo(&x, &fs, n, &Ctx::sequential()).unwrap();
            let want = mttkrp_dense(&x, &fs, n);
            assert_mat_eq(&got, &want, 1e-12);
        }
    }

    #[test]
    fn hicoo_matches_dense_every_mode() {
        let x = sample();
        let fs = factors_for(&x, 3);
        let h = HiCooTensor::from_coo(&x, 2).unwrap();
        for n in 0..3 {
            let got = mttkrp_hicoo(&h, &fs, n, &Ctx::sequential()).unwrap();
            let want = mttkrp_dense(&x, &fs, n);
            assert_mat_eq(&got, &want, 1e-12);
        }
    }

    #[test]
    fn parallel_atomic_path_matches() {
        let entries: Vec<(Vec<u32>, f64)> = (0..30_000u32)
            .map(|i| (vec![i % 16, (i / 16) % 64, (i * 13) % 64], 1.0 + (i % 7) as f64))
            .collect();
        let mut x = CooTensor::from_entries(Shape::new(vec![16, 64, 64]), entries).unwrap();
        x.dedup_sum();
        let fs = factors_for(&x, 8);
        let seq = mttkrp_coo(&x, &fs, 0, &Ctx::sequential()).unwrap();
        let par = mttkrp_coo(&x, &fs, 0, &Ctx::new(8, pasta_par::Schedule::Dynamic(128))).unwrap();
        assert_mat_eq(&par, &seq, 1e-9);

        let h = HiCooTensor::from_coo(&x, 8).unwrap();
        let hpar = mttkrp_hicoo(&h, &fs, 0, &Ctx::new(8, pasta_par::Schedule::Guided)).unwrap();
        assert_mat_eq(&hpar, &seq, 1e-9);
    }

    #[test]
    fn fourth_order_all_modes() {
        let x = CooTensor::<f64>::from_entries(
            Shape::new(vec![3, 4, 3, 5]),
            vec![
                (vec![0, 1, 2, 0], 1.5),
                (vec![0, 1, 2, 4], 2.0),
                (vec![2, 2, 2, 1], -3.0),
                (vec![1, 3, 0, 2], 0.5),
            ],
        )
        .unwrap();
        let fs = factors_for(&x, 4);
        let h = HiCooTensor::from_coo(&x, 2).unwrap();
        for n in 0..4 {
            let want = mttkrp_dense(&x, &fs, n);
            assert_mat_eq(&mttkrp_coo(&x, &fs, n, &Ctx::sequential()).unwrap(), &want, 1e-12);
            assert_mat_eq(&mttkrp_hicoo(&h, &fs, n, &Ctx::sequential()).unwrap(), &want, 1e-12);
        }
    }

    #[test]
    fn rejects_inconsistent_factors() {
        let x = sample();
        let mut fs = factors_for(&x, 3);
        assert!(mttkrp_coo(&x, &fs[..2], 0, &Ctx::sequential()).is_err());
        fs[1] = DenseMatrix::zeros(5, 2); // wrong rank
        assert!(mttkrp_coo(&x, &fs, 0, &Ctx::sequential()).is_err());
        let mut fs = factors_for(&x, 3);
        fs[2] = DenseMatrix::zeros(7, 3); // wrong rows
        assert!(mttkrp_coo(&x, &fs, 0, &Ctx::sequential()).is_err());
        let fs0 = vec![DenseMatrix::<f64>::zeros(4, 0); 3];
        assert!(mttkrp_coo(&x, &fs0, 0, &Ctx::sequential()).is_err());
    }

    #[test]
    fn rank_16_paper_setting() {
        let x = sample();
        let fs = factors_for(&x, 16);
        let got = mttkrp_coo(&x, &fs, 1, &Ctx::sequential()).unwrap();
        let want = mttkrp_dense(&x, &fs, 1);
        assert_mat_eq(&got, &want, 1e-12);
        assert_eq!(got.cols(), 16);
    }
}
