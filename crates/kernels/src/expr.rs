//! The tensor-expression layer: a small algebra IR ([`ExprGraph`]), a
//! cost-model planner ([`lower`]), and the executable plans it emits
//! ([`ExprPlan`], [`ContractionPlan`]).
//!
//! This generalizes the three canned fused shapes in
//! [`fused`](crate::fused) into an open grammar:
//!
//! ```text
//! expr   := leaf
//!         | ts(expr, op, scalar)          elementwise-with-scalar
//!         | tew(leaf, op, tensor)         elementwise same-pattern
//!         | ttv(expr, mode, vector)       contract one mode with a vector
//!         | ttm(expr, mode, matrix)       contract one mode with a matrix
//!         | mttkrp(expr, rank, format)    terminal: factored-matrix product
//! ```
//!
//! Each node is an edge of a chain rooted at one sparse leaf (graphs
//! sharing a prefix form a DAG of such chains). [`lower`] walks the chain
//! and decides, per edge, between *fused* evaluation — folded into one
//! pass through the per-thread [`workspace`](crate::workspace)s — and
//! *materialization* (kernel-at-a-time), consulting the
//! [`choose_fusion`] cost model when
//! [`Ctx::fusion`] is `Auto`. The result is an [`ExprPlan`]:
//!
//! 1. a **base** tensor (the leaf, with any leading TS/TEW edges constant-
//!    folded into an owned copy at plan time — untimed preprocessing, like
//!    the plan sorts);
//! 2. an optional fused **head** — either a [`ContractionPlan`] covering a
//!    maximal run of TTV/TTM edges (plus a trailing TS epilogue applied to
//!    the output values in place), or a cached MTTKRP route;
//! 3. a **suffix** of materialized edges executed kernel-at-a-time — the
//!    edges the cost model (or an inexpressible shape, e.g. contracting a
//!    mode a TTM already densified) refused to fuse.
//!
//! [`ContractionPlan`] is the single evaluation loop behind every fused
//! contraction in the suite: the canned [`FusedTtvPlan`], [`FusedTtmChainPlan`]
//! and the TTM chains of Tucker delegate to it, so the planner-driven and
//! canned paths are bit-identical by construction.
//!
//! [`FusedTtvPlan`]: crate::fused::FusedTtvPlan
//! [`FusedTtmChainPlan`]: crate::fused::FusedTtmChainPlan
//! [`Ctx::fusion`]: crate::pipeline::Ctx::fusion

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::analysis::{
    choose_fusion, resort_pays_off, FuseDecision, FusionParams, Kernel, MttkrpSchedParams,
};
use crate::microkernel::axpy;
use crate::mttkrp::{mttkrp_coo, mttkrp_hicoo, MttkrpCooPlan};
use crate::pipeline::{
    BackendKind, Ctx, EwOp, FormatKind, FusionChoice, KernelPlan, StrategyChoice, TsOp,
};
use crate::workspace::{choose_workspace, FusedWorkspace, WorkspaceKind};
use crate::{tew_coo_same_pattern, ttm_coo, ttm_scoo, ttv_coo};
use pasta_core::sort::mode_first_order;
use pasta_core::{
    CooTensor, Coord, DenseMatrix, DenseVector, Error, HiCooTensor, Result, SemiCooTensor, Shape,
    Value,
};
use pasta_obs::{counters, span, span_detail, CounterId};
use pasta_par::{parallel_for, tree_reduce, SharedSlice};

/// The output fiber owning entry `e` of a sorted tensor whose fiber runs
/// begin at `starts` (non-empty, `starts[0] == 0`).
#[inline]
pub(crate) fn fiber_of(starts: &[usize], e: usize) -> usize {
    starts.partition_point(|&s| s <= e) - 1
}

/// Splits `0..n` into `parts` near-equal contiguous chunks.
pub(crate) fn even_chunks(n: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    let parts = parts.max(1).min(n.max(1));
    let per = n / parts;
    let rem = n % parts;
    (0..parts)
        .map(|id| {
            let start = id * per + id.min(rem);
            start..start + per + usize::from(id < rem)
        })
        .filter(|r| !r.is_empty())
        .collect()
}

/// Runs `make` on each of `parts` workers, collecting the per-worker
/// results (the privatized fan-out used by the sparse-workspace paths).
pub(crate) fn privatized<T: Send, F: Fn(usize) -> T + Sync>(
    parts: usize,
    threads: usize,
    make: F,
) -> Vec<T> {
    let mut slots: Vec<Option<T>> = (0..parts).map(|_| None).collect();
    {
        let shared = SharedSlice::new(&mut slots);
        parallel_for(parts, threads, pasta_par::Schedule::Static, |ids| {
            for id in ids {
                // SAFETY: participant ids partition 0..parts, one slot each.
                unsafe { shared.write(id, Some(make(id))) };
            }
        });
    }
    slots.into_iter().map(|s| s.expect("worker wrote its slot")).collect()
}

/// Start offsets of the runs of equal kept-mode coordinates in a tensor
/// sorted kept-modes-first.
pub(crate) fn kept_runs<V: Value>(x: &CooTensor<V>, kept: &[usize]) -> Vec<usize> {
    let mut starts = Vec::new();
    for e in 0..x.nnz() {
        if e == 0 || kept.iter().any(|&m| x.mode_inds(m)[e] != x.mode_inds(m)[e - 1]) {
            starts.push(e);
        }
    }
    starts
}

/// A planned fused contraction: some modes of one sorted tensor copy
/// contracted with vectors, others with matrices, the rest kept sparse —
/// executed in one pass through per-thread workspaces.
///
/// This is the evaluation engine every fused contraction in the suite
/// shares. `vec_modes` generalizes [`FusedTtvPlan`](crate::fused::FusedTtvPlan)
/// (matrices empty), `mat_modes` generalizes
/// [`FusedTtmChainPlan`](crate::fused::FusedTtmChainPlan) (vectors empty,
/// one kept mode), and mixed plans execute the TTV→TTM chains only the
/// expression planner emits. When no mode is kept the contraction runs to
/// a dense block via [`execute_full`](Self::execute_full).
///
/// Construction does *not* validate the route against the Combo registry —
/// the callers ([`lower`] and the canned plan constructors) do, once per
/// plan, exactly as the canned plans always have.
#[derive(Debug)]
pub struct ContractionPlan<V> {
    x: CooTensor<V>,
    kept: Vec<usize>,
    vec_modes: Vec<usize>,
    mat_modes: Vec<usize>,
    fiber_starts: Vec<usize>,
}

impl<V: Value> ContractionPlan<V> {
    /// Plans the contraction of `vec_modes` with vectors and `mat_modes`
    /// with matrices (base-tensor mode numbers; each list is deduplicated
    /// and sorted, and the two must be disjoint). Sorts the tensor
    /// kept-modes-outermost unless its sort state already matches.
    ///
    /// # Errors
    ///
    /// Rejects out-of-range modes, overlapping lists, and contracting
    /// nothing.
    pub fn new(
        x: CooTensor<V>,
        vec_modes: &[usize],
        mat_modes: &[usize],
        ctx: &Ctx,
    ) -> Result<Self> {
        let order = x.order();
        let mut vec_modes = vec_modes.to_vec();
        vec_modes.sort_unstable();
        vec_modes.dedup();
        let mut mat_modes = mat_modes.to_vec();
        mat_modes.sort_unstable();
        mat_modes.dedup();
        for &m in vec_modes.iter().chain(&mat_modes) {
            x.shape().check_mode(m)?;
        }
        if vec_modes.iter().any(|m| mat_modes.contains(m)) {
            return Err(Error::OperandMismatch {
                what: "a mode cannot be contracted by both a vector and a matrix".into(),
            });
        }
        if vec_modes.is_empty() && mat_modes.is_empty() {
            return Err(Error::OperandMismatch { what: "no modes to contract".into() });
        }
        let contracted = |m: &usize| vec_modes.contains(m) || mat_modes.contains(m);
        let kept: Vec<usize> = (0..order).filter(|m| !contracted(m)).collect();
        let mut sorted = x;
        let fiber_starts = if kept.is_empty() {
            // Full contraction: entry order is irrelevant (every entry
            // feeds one output block), so skip the sort — exactly what
            // the canned full-contraction TTM chain does.
            Vec::new()
        } else if vec_modes.is_empty() && kept.len() == 1 {
            // Pure TTM chain: the canned plan only requires the kept mode
            // outermost (any inner order works), so preserve that weaker
            // skip condition for bit-identical reuse of prior sorts.
            let skip = kept[0];
            if sorted.sort_state().outermost() != Some(skip) {
                sorted.sort_by_mode_order_threads(&mode_first_order(order, skip), ctx.threads);
            }
            kept_runs(&sorted, &kept)
        } else {
            let mode_order: Vec<usize> =
                kept.iter().chain(vec_modes.iter()).chain(mat_modes.iter()).copied().collect();
            if sorted.sort_state().mode_order() != Some(&mode_order[..]) {
                sorted.sort_by_mode_order_threads(&mode_order, ctx.threads);
            }
            kept_runs(&sorted, &kept)
        };
        counters().add(CounterId::FusedPlanCacheMisses, 1);
        Ok(Self { x: sorted, kept, vec_modes, mat_modes, fiber_starts })
    }

    /// The sorted base tensor the plan executes over.
    pub fn base(&self) -> &CooTensor<V> {
        &self.x
    }

    /// Modes contracted with vectors, ascending (execute vectors align
    /// with this order).
    pub fn vec_modes(&self) -> &[usize] {
        &self.vec_modes
    }

    /// Modes contracted with matrices, ascending (execute matrices align
    /// with this order).
    pub fn mat_modes(&self) -> &[usize] {
        &self.mat_modes
    }

    /// The modes kept sparse, ascending.
    pub fn kept(&self) -> &[usize] {
        &self.kept
    }

    /// The number of output fibers (distinct kept-mode coordinate runs);
    /// zero when every mode is contracted.
    pub fn num_fibers(&self) -> usize {
        self.fiber_starts.len()
    }

    /// Values per output fiber given the execute matrices: `∏ cols`.
    pub fn dense_volume(&self, mats: &[&DenseMatrix<V>]) -> usize {
        mats.iter().map(|u| u.cols()).product::<usize>().max(1)
    }

    fn check_operands(&self, vecs: &[&DenseVector<V>], mats: &[&DenseMatrix<V>]) -> Result<usize> {
        if vecs.len() != self.vec_modes.len() {
            return Err(Error::OperandMismatch {
                what: format!("expected {} vectors, got {}", self.vec_modes.len(), vecs.len()),
            });
        }
        for (&m, v) in self.vec_modes.iter().zip(vecs) {
            if v.len() != self.x.shape().dim(m) as usize {
                return Err(Error::OperandMismatch {
                    what: format!(
                        "vector for mode {m} has length {} but the mode has dimension {}",
                        v.len(),
                        self.x.shape().dim(m)
                    ),
                });
            }
        }
        if mats.len() != self.mat_modes.len() {
            return Err(Error::OperandMismatch {
                what: format!("expected {} matrices, got {}", self.mat_modes.len(), mats.len()),
            });
        }
        for (&m, u) in self.mat_modes.iter().zip(mats) {
            if u.rows() != self.x.shape().dim(m) as usize {
                return Err(Error::OperandMismatch {
                    what: format!(
                        "factor for mode {m} has {} rows but mode {m} has dimension {}",
                        u.rows(),
                        self.x.shape().dim(m)
                    ),
                });
            }
            if u.cols() == 0 {
                return Err(Error::OperandMismatch {
                    what: format!("factor for mode {m} has rank 0; rank must be at least 1"),
                });
            }
        }
        Ok(self.dense_volume(mats))
    }

    /// The span name the fused execute reports under: the canned names
    /// when the shape is a canned shape, `fused.contract` otherwise.
    fn span_name(&self, full: bool) -> &'static str {
        if full {
            if self.vec_modes.is_empty() {
                "fused.ttm_full"
            } else {
                "fused.contract"
            }
        } else if self.mat_modes.is_empty() {
            "fused.ttv_chain"
        } else if self.vec_modes.is_empty() && self.kept.len() == 1 {
            "fused.ttm_chain"
        } else {
            "fused.contract"
        }
    }

    /// Expands entry `e` as `val · ∏ v_k[i_k] · ⊗_m U_m[i_m, :]` and adds
    /// it into `acc` (length `∏ cols`, row-major over the matrix modes in
    /// increasing mode order). `tmp` is caller-provided scratch.
    #[inline]
    fn accumulate_entry(
        &self,
        e: usize,
        vecs: &[&DenseVector<V>],
        mats: &[&DenseMatrix<V>],
        tmp: &mut Vec<V>,
        acc: &mut [V],
    ) {
        let mut seed = self.x.vals()[e];
        for (k, &m) in self.vec_modes.iter().enumerate() {
            seed *= vecs[k].as_slice()[self.x.mode_inds(m)[e] as usize];
        }
        let last = self.mat_modes.len() - 1;
        tmp.clear();
        tmp.push(seed);
        for (k, &m) in self.mat_modes[..last].iter().enumerate() {
            let row = mats[k].row(self.x.mode_inds(m)[e] as usize);
            let prev = tmp.len();
            for t in 0..prev {
                let a = tmp[t];
                for &u in row {
                    tmp.push(a * u);
                }
            }
            tmp.drain(..prev);
        }
        let row = mats[last].row(self.x.mode_inds(self.mat_modes[last])[e] as usize);
        let r = row.len();
        for (t, &a) in tmp.iter().enumerate() {
            axpy(&mut acc[t * r..(t + 1) * r], a, row);
        }
    }

    /// The timed value computation into a pre-allocated `out` of length
    /// `num_fibers · ∏ cols`, with an explicit workspace kind: `Dense`
    /// runs owner-computes over the sorted fiber runs; `Sparse` privatizes
    /// a hashed accumulator per worker over even entry chunks and
    /// tree-merges deterministically.
    ///
    /// # Errors
    ///
    /// Rejects operand count/shape mismatches, full-contraction plans
    /// (use [`Self::execute_full`]), and output-length mismatches.
    pub fn execute_into(
        &self,
        vecs: &[&DenseVector<V>],
        mats: &[&DenseMatrix<V>],
        out: &mut [V],
        ctx: &Ctx,
        kind: WorkspaceKind,
    ) -> Result<()> {
        let dvol = self.check_operands(vecs, mats)?;
        if self.kept.is_empty() {
            return Err(Error::OperandMismatch {
                what: "plan contracts every mode; use execute_full".into(),
            });
        }
        if out.len() != self.num_fibers() * dvol {
            return Err(Error::OperandMismatch {
                what: format!("output length {} vs {} fibers", out.len(), self.num_fibers()),
            });
        }
        let c = counters();
        c.add(CounterId::FusedChains, 1);
        c.add(CounterId::FusedEntries, self.x.nnz() as u64);
        let _span =
            span_detail("kernel", self.span_name(false), kind.label(), self.x.nnz() as u64, 0, 0);

        let nnz = self.x.nnz();
        if self.mat_modes.is_empty() {
            // Vector-only contraction: each output fiber is one scalar.
            let contrib = |e: usize| {
                let mut p = self.x.vals()[e];
                for (k, &m) in self.vec_modes.iter().enumerate() {
                    p *= vecs[k].as_slice()[self.x.mode_inds(m)[e] as usize];
                }
                p
            };
            match kind {
                WorkspaceKind::Dense => {
                    let starts = &self.fiber_starts;
                    let shared = SharedSlice::new(out);
                    parallel_for(starts.len(), ctx.threads, ctx.schedule, |fs| {
                        for f in fs.clone() {
                            let lo = starts[f];
                            let hi = if f + 1 < starts.len() { starts[f + 1] } else { nnz };
                            let mut acc = V::ZERO;
                            for e in lo..hi {
                                acc += contrib(e);
                            }
                            // SAFETY: fiber indices partition the output;
                            // parallel_for ranges are disjoint.
                            unsafe { shared.write(f, acc) };
                        }
                    });
                }
                WorkspaceKind::Sparse => {
                    let chunks = even_chunks(nnz, ctx.threads);
                    let accs = privatized(chunks.len(), ctx.threads, |id| {
                        let range = chunks[id].clone();
                        let expect = range.len().min(self.num_fibers());
                        let mut ws = FusedWorkspace::new(WorkspaceKind::Sparse, 0, 1, expect);
                        for e in range {
                            ws.row_mut(fiber_of(&self.fiber_starts, e) as u32)[0] += contrib(e);
                        }
                        ws
                    });
                    if let Some(merged) = tree_reduce(accs, ctx.threads, |dst, src| dst.merge(&src))
                    {
                        merged.drain_into(out);
                    }
                }
            }
        } else {
            // Matrix (or mixed) contraction: one dense block per fiber.
            let nf = self.num_fibers();
            match kind {
                WorkspaceKind::Dense => {
                    let starts = &self.fiber_starts;
                    let shared = SharedSlice::new(out);
                    parallel_for(nf, ctx.threads, ctx.schedule, |fs| {
                        let mut tmp = Vec::with_capacity(dvol);
                        // SAFETY: fiber ranges are disjoint, so the val
                        // regions [start·dvol, end·dvol) are too.
                        let block = unsafe { shared.slice_mut(fs.start * dvol..fs.end * dvol) };
                        for f in fs.clone() {
                            let lo = starts[f];
                            let hi = if f + 1 < starts.len() { starts[f + 1] } else { nnz };
                            let off = (f - fs.start) * dvol;
                            for e in lo..hi {
                                self.accumulate_entry(
                                    e,
                                    vecs,
                                    mats,
                                    &mut tmp,
                                    &mut block[off..off + dvol],
                                );
                            }
                        }
                    });
                }
                WorkspaceKind::Sparse => {
                    let chunks = even_chunks(nnz, ctx.threads);
                    let accs = privatized(chunks.len(), ctx.threads, |id| {
                        let range = chunks[id].clone();
                        let expect = range.len().min(nf);
                        let mut ws = FusedWorkspace::new(WorkspaceKind::Sparse, 0, dvol, expect);
                        let mut tmp = Vec::with_capacity(dvol);
                        for e in range {
                            let f = fiber_of(&self.fiber_starts, e) as u32;
                            self.accumulate_entry(e, vecs, mats, &mut tmp, ws.row_mut(f));
                        }
                        ws
                    });
                    if let Some(merged) = tree_reduce(accs, ctx.threads, |dst, src| dst.merge(&src))
                    {
                        merged.drain_into(out);
                    }
                }
            }
        }
        Ok(())
    }

    /// Executes a full contraction (no kept modes) straight to one dense
    /// block of length `∏ cols`, row-major over the matrix modes in mode
    /// order, via chunk-privatized dense scratch and a tree merge.
    ///
    /// # Errors
    ///
    /// Rejects operand mismatches and partial-contraction plans.
    pub fn execute_full(
        &self,
        vecs: &[&DenseVector<V>],
        mats: &[&DenseMatrix<V>],
        ctx: &Ctx,
    ) -> Result<Vec<V>> {
        let dvol = self.check_operands(vecs, mats)?;
        if !self.kept.is_empty() {
            return Err(Error::OperandMismatch {
                what: "plan keeps modes sparse; use execute_into".into(),
            });
        }
        let c = counters();
        c.add(CounterId::FusedChains, 1);
        c.add(CounterId::FusedEntries, self.x.nnz() as u64);
        let _span = span_detail("kernel", self.span_name(true), "", self.x.nnz() as u64, 0, 0);

        let nnz = self.x.nnz();
        let chunks = even_chunks(nnz, ctx.threads);
        let parts = privatized(chunks.len(), ctx.threads, |id| {
            let mut ws = FusedWorkspace::new(WorkspaceKind::Dense, 1, dvol, 1);
            let mut tmp = Vec::with_capacity(dvol);
            for e in chunks[id].clone() {
                if self.mat_modes.is_empty() {
                    let mut p = self.x.vals()[e];
                    for (k, &m) in self.vec_modes.iter().enumerate() {
                        p *= vecs[k].as_slice()[self.x.mode_inds(m)[e] as usize];
                    }
                    ws.row_mut(0)[0] += p;
                } else {
                    self.accumulate_entry(e, vecs, mats, &mut tmp, ws.row_mut(0));
                }
            }
            ws
        });
        let mut core = vec![V::ZERO; dvol];
        if let Some(merged) = tree_reduce(parts, ctx.threads, |dst, src| dst.merge(&src)) {
            merged.drain_into(&mut core);
        }
        Ok(core)
    }

    /// The output shape of a vector-only contraction (kept-mode dims).
    pub fn out_shape(&self) -> Shape {
        Shape::new(self.kept.iter().map(|&m| self.x.shape().dim(m)).collect())
    }

    /// Assembles vector-only contraction values into a COO tensor over the
    /// kept modes (the pattern comes from the sorted fiber runs, so the
    /// result is born sorted).
    ///
    /// # Errors
    ///
    /// Rejects plans with matrix modes or a value-count mismatch.
    pub fn assemble_coo(&self, vals: Vec<V>) -> Result<CooTensor<V>> {
        if !self.mat_modes.is_empty() {
            return Err(Error::OperandMismatch {
                what: "matrix contractions assemble semi-sparse, not COO".into(),
            });
        }
        let mut inds: Vec<Vec<Coord>> = vec![Vec::with_capacity(vals.len()); self.kept.len()];
        for &s in &self.fiber_starts {
            for (k, &m) in self.kept.iter().enumerate() {
                inds[k].push(self.x.mode_inds(m)[s]);
            }
        }
        let mut y = CooTensor::from_parts(self.out_shape(), inds, vals)?;
        y.assume_sorted_by((0..self.kept.len()).collect());
        Ok(y)
    }

    /// Assembles contraction values into a semi-sparse tensor: sparse over
    /// the kept modes, dense over the matrix modes (vector modes are
    /// gone). `mats` supply the dense dimensions.
    ///
    /// # Errors
    ///
    /// Rejects plans without matrix modes.
    pub fn assemble_semi(
        &self,
        vals: Vec<V>,
        mats: &[&DenseMatrix<V>],
    ) -> Result<SemiCooTensor<V>> {
        if self.mat_modes.is_empty() {
            return Err(Error::OperandMismatch {
                what: "vector-only contractions assemble COO, not semi-sparse".into(),
            });
        }
        // Output modes: every base mode except the vector-contracted ones,
        // in base order; kept modes stay sparse, matrix modes go dense.
        let out_modes: Vec<usize> =
            (0..self.x.order()).filter(|m| !self.vec_modes.contains(m)).collect();
        let dims: Vec<Coord> = out_modes
            .iter()
            .map(|&m| match self.mat_modes.iter().position(|&mm| mm == m) {
                Some(k) => mats[k].cols() as Coord,
                None => self.x.shape().dim(m),
            })
            .collect();
        let dense_modes: Vec<usize> = out_modes
            .iter()
            .enumerate()
            .filter(|(_, &m)| self.mat_modes.contains(&m))
            .map(|(p, _)| p)
            .collect();
        let sparse_inds: Vec<Vec<Coord>> = self
            .kept
            .iter()
            .map(|&m| self.fiber_starts.iter().map(|&s| self.x.mode_inds(m)[s]).collect())
            .collect();
        SemiCooTensor::from_fibers(Shape::new(dims), dense_modes, sparse_inds, vals)
    }
}

/// A sparse leaf: the tensor an expression chain starts from.
#[derive(Debug, Clone)]
pub enum LeafTensor<'a, V> {
    /// Borrowed from the caller (decomposition drivers).
    Borrowed(&'a CooTensor<V>),
    /// Shared ownership (the serving layer's catalog tensors).
    Shared(Arc<CooTensor<V>>),
}

impl<V> LeafTensor<'_, V> {
    /// The underlying tensor.
    pub fn get(&self) -> &CooTensor<V> {
        match self {
            LeafTensor::Borrowed(x) => x,
            LeafTensor::Shared(x) => x,
        }
    }
}

/// A vector operand of a TTV edge: owned by the graph, or bound at
/// execute time through a [`Bindings`] slot.
#[derive(Debug, Clone)]
pub enum VecOperand<V> {
    /// The vector itself.
    Owned(DenseVector<V>),
    /// Index into [`Bindings::vecs`].
    Slot(usize),
}

/// A matrix operand of a TTM edge: owned by the graph, or bound at
/// execute time through a [`Bindings`] slot (with the column count
/// declared up front so the planner can cost the dense volume).
#[derive(Debug, Clone)]
pub enum MatOperand<V> {
    /// The matrix itself.
    Owned(DenseMatrix<V>),
    /// Index into [`Bindings::mats`] plus the bound matrix's column count.
    Slot {
        /// Index into [`Bindings::mats`].
        slot: usize,
        /// Column count the bound matrix must have.
        cols: usize,
    },
}

impl<V: Value> MatOperand<V> {
    fn cols(&self) -> usize {
        match self {
            MatOperand::Owned(u) => u.cols(),
            MatOperand::Slot { cols, .. } => *cols,
        }
    }
}

#[derive(Debug)]
enum NodeKind<'a, V> {
    Leaf(LeafTensor<'a, V>),
    Ts { input: ExprId, op: TsOp, scalar: V },
    Tew { input: ExprId, op: EwOp, other: CooTensor<V> },
    Ttv { input: ExprId, mode: usize, v: VecOperand<V> },
    Ttm { input: ExprId, mode: usize, u: MatOperand<V> },
    Mttkrp { input: ExprId, rank: usize, format: FormatKind, block: u32 },
}

impl<V> NodeKind<'_, V> {
    fn input(&self) -> Option<ExprId> {
        match *self {
            NodeKind::Leaf(_) => None,
            NodeKind::Ts { input, .. }
            | NodeKind::Tew { input, .. }
            | NodeKind::Ttv { input, .. }
            | NodeKind::Ttm { input, .. }
            | NodeKind::Mttkrp { input, .. } => Some(input),
        }
    }
}

#[derive(Debug)]
struct Node<'a, V> {
    kind: NodeKind<'a, V>,
    /// Inferred shape of this node's value; empty for the (matrix-valued)
    /// terminal MTTKRP node.
    dims: Vec<Coord>,
}

/// A node handle in an [`ExprGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExprId(usize);

/// A tensor-expression DAG: chains of single-input ops rooted at sparse
/// leaves, with shape inference at build time.
///
/// Mode numbers in `ttv`/`ttm` are **current-shape relative**: a TTV
/// removes its mode (later modes shift down one), a TTM replaces its
/// mode's dimension with the matrix's column count (no shift) — exactly
/// the semantics of the underlying kernels when composed one at a time.
/// The [`Self::ttv_multi`] / [`Self::ttm_all_but`] composites accept
/// input-relative mode lists and handle the shifting.
///
/// # Examples
///
/// ```
/// use pasta_core::{CooTensor, DenseVector, Shape};
/// use pasta_kernels::expr::{lower, Bindings, ExprGraph, ExprOut, VecOperand};
/// use pasta_kernels::Ctx;
///
/// # fn main() -> Result<(), pasta_core::Error> {
/// let x = CooTensor::from_entries(
///     Shape::new(vec![2, 3, 4]),
///     vec![(vec![0, 1, 2], 2.0_f64), (vec![0, 2, 3], 5.0)],
/// )?;
/// let mut g = ExprGraph::new();
/// let leaf = g.leaf(&x);
/// let v = DenseVector::from_vec(vec![1.0, 1.0, 3.0, 7.0]);
/// let root = g.ttv(leaf, 2, VecOperand::Owned(v))?;
/// let ctx = Ctx::sequential();
/// let plan = lower(&g, root, &ctx)?;
/// match plan.execute(&Bindings::none())? {
///     ExprOut::Coo(y) => assert_eq!(y.get(&[0, 1]), Some(6.0)),
///     _ => unreachable!(),
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct ExprGraph<'a, V> {
    nodes: Vec<Node<'a, V>>,
}

impl<'a, V: Value> ExprGraph<'a, V> {
    /// An empty graph.
    pub fn new() -> Self {
        Self { nodes: Vec::new() }
    }

    fn push(&mut self, kind: NodeKind<'a, V>, dims: Vec<Coord>) -> ExprId {
        self.nodes.push(Node { kind, dims });
        ExprId(self.nodes.len() - 1)
    }

    fn check_input(&self, id: ExprId) -> Result<&Node<'a, V>> {
        let n = self.nodes.get(id.0).ok_or_else(|| Error::OperandMismatch {
            what: format!("expression node {} does not exist", id.0),
        })?;
        if matches!(n.kind, NodeKind::Mttkrp { .. }) {
            return Err(Error::OperandMismatch {
                what: "mttkrp produces a dense matrix; it must be the graph root".into(),
            });
        }
        Ok(n)
    }

    /// Adds a borrowed sparse leaf.
    pub fn leaf(&mut self, x: &'a CooTensor<V>) -> ExprId {
        let dims = x.shape().dims().to_vec();
        self.push(NodeKind::Leaf(LeafTensor::Borrowed(x)), dims)
    }

    /// Adds a shared-ownership sparse leaf (catalog tensors in the
    /// serving layer).
    pub fn leaf_shared(&mut self, x: Arc<CooTensor<V>>) -> ExprId {
        let dims = x.shape().dims().to_vec();
        self.push(NodeKind::Leaf(LeafTensor::Shared(x)), dims)
    }

    /// Adds a tensor-scalar elementwise edge.
    ///
    /// # Errors
    ///
    /// Rejects invalid inputs (missing node, MTTKRP input).
    pub fn ts(&mut self, input: ExprId, op: TsOp, scalar: V) -> Result<ExprId> {
        let dims = self.check_input(input)?.dims.clone();
        Ok(self.push(NodeKind::Ts { input, op, scalar }, dims))
    }

    /// Adds a same-pattern tensor-elementwise edge. Only valid directly on
    /// a leaf (the fused layer folds it into the base tensor; patterns of
    /// deeper intermediates are not known until execution).
    ///
    /// # Errors
    ///
    /// Rejects non-leaf inputs and shape mismatches.
    pub fn tew(&mut self, input: ExprId, op: EwOp, other: CooTensor<V>) -> Result<ExprId> {
        let node = self.check_input(input)?;
        if !matches!(node.kind, NodeKind::Leaf(_)) {
            return Err(Error::OperandMismatch {
                what: "tew edges apply to leaves only (same-pattern operand)".into(),
            });
        }
        if other.shape().dims() != &node.dims[..] {
            return Err(Error::ShapeMismatch {
                left: node.dims.clone(),
                right: other.shape().dims().to_vec(),
            });
        }
        let dims = node.dims.clone();
        Ok(self.push(NodeKind::Tew { input, op, other }, dims))
    }

    /// Adds a TTV edge contracting current mode `mode` with `v`. The mode
    /// disappears from the shape.
    ///
    /// # Errors
    ///
    /// Rejects out-of-range modes and owned-vector length mismatches.
    pub fn ttv(&mut self, input: ExprId, mode: usize, v: VecOperand<V>) -> Result<ExprId> {
        let node = self.check_input(input)?;
        if mode >= node.dims.len() {
            return Err(Error::InvalidMode { mode, order: node.dims.len() });
        }
        if let VecOperand::Owned(ref vec) = v {
            if vec.len() != node.dims[mode] as usize {
                return Err(Error::OperandMismatch {
                    what: format!(
                        "vector for mode {mode} has length {} but the mode has dimension {}",
                        vec.len(),
                        node.dims[mode]
                    ),
                });
            }
        }
        let mut dims = node.dims.clone();
        dims.remove(mode);
        Ok(self.push(NodeKind::Ttv { input, mode, v }, dims))
    }

    /// Adds a TTM edge contracting current mode `mode` with `u`. The
    /// mode's dimension becomes the matrix's column count.
    ///
    /// # Errors
    ///
    /// Rejects out-of-range modes, zero-column operands, and owned-matrix
    /// row mismatches.
    pub fn ttm(&mut self, input: ExprId, mode: usize, u: MatOperand<V>) -> Result<ExprId> {
        let node = self.check_input(input)?;
        if mode >= node.dims.len() {
            return Err(Error::InvalidMode { mode, order: node.dims.len() });
        }
        if let MatOperand::Owned(ref mat) = u {
            if mat.rows() != node.dims[mode] as usize {
                return Err(Error::OperandMismatch {
                    what: format!(
                        "factor for mode {mode} has {} rows but mode {mode} has dimension {}",
                        mat.rows(),
                        node.dims[mode]
                    ),
                });
            }
        }
        if u.cols() == 0 {
            return Err(Error::OperandMismatch {
                what: format!("factor for mode {mode} has rank 0; rank must be at least 1"),
            });
        }
        let mut dims = node.dims.clone();
        dims[mode] = u.cols() as Coord;
        Ok(self.push(NodeKind::Ttm { input, mode, u }, dims))
    }

    /// Adds the terminal MTTKRP node: at execute time, [`Bindings::factors`]
    /// and [`Bindings::mode`] select the factored-matrix product, so one
    /// lowered plan (and its conversions) serves every mode of an ALS
    /// sweep.
    ///
    /// # Errors
    ///
    /// Rejects rank 0 and inputs of order below two.
    pub fn mttkrp(
        &mut self,
        input: ExprId,
        rank: usize,
        format: FormatKind,
        block: u32,
    ) -> Result<ExprId> {
        let node = self.check_input(input)?;
        if rank == 0 {
            return Err(Error::OperandMismatch { what: "mttkrp rank must be at least 1".into() });
        }
        if node.dims.len() < 2 {
            return Err(Error::InvalidMode { mode: 0, order: node.dims.len() });
        }
        Ok(self.push(NodeKind::Mttkrp { input, rank, format, block }, Vec::new()))
    }

    /// Composite: contract several modes with vectors. `modes` are
    /// **input-relative** and distinct; edges are added highest mode first
    /// so earlier removals don't shift later mode numbers.
    ///
    /// # Errors
    ///
    /// Rejects duplicate modes and per-edge validation failures.
    pub fn ttv_multi(
        &mut self,
        input: ExprId,
        modes: &[usize],
        vecs: Vec<VecOperand<V>>,
    ) -> Result<ExprId> {
        if modes.len() != vecs.len() {
            return Err(Error::OperandMismatch {
                what: format!("expected {} vectors, got {}", modes.len(), vecs.len()),
            });
        }
        let mut pairs: Vec<(usize, VecOperand<V>)> = modes.iter().copied().zip(vecs).collect();
        pairs.sort_by_key(|&(m, _)| std::cmp::Reverse(m));
        if pairs.windows(2).any(|w| w[0].0 == w[1].0) {
            return Err(Error::OperandMismatch { what: "duplicate contraction mode".into() });
        }
        let mut cur = input;
        for (m, v) in pairs {
            cur = self.ttv(cur, m, v)?;
        }
        Ok(cur)
    }

    /// Composite: contract every input mode except `skip` with a matrix
    /// (`mats` aligned with ascending non-skip modes; pass
    /// `skip == order` to contract all modes). TTM preserves mode
    /// positions, so input-relative and current-relative modes coincide.
    ///
    /// # Errors
    ///
    /// Rejects operand-count mismatches and per-edge validation failures.
    pub fn ttm_all_but(
        &mut self,
        input: ExprId,
        skip: usize,
        mats: Vec<MatOperand<V>>,
    ) -> Result<ExprId> {
        let order = self.check_input(input)?.dims.len();
        let modes: Vec<usize> = (0..order).filter(|&m| m != skip).collect();
        if mats.len() != modes.len() {
            return Err(Error::OperandMismatch {
                what: format!("expected {} matrices, got {}", modes.len(), mats.len()),
            });
        }
        let mut cur = input;
        for (m, u) in modes.into_iter().zip(mats) {
            cur = self.ttm(cur, m, u)?;
        }
        Ok(cur)
    }

    /// The inferred shape of node `id` (empty for the matrix-valued
    /// MTTKRP terminal).
    pub fn dims(&self, id: ExprId) -> &[Coord] {
        &self.nodes[id.0].dims
    }
}

/// Execute-time operand bindings for a lowered plan: slot-addressed
/// vectors/matrices plus the MTTKRP factor set and product mode.
///
/// Keeping operands out of the plan is what makes one lowered graph
/// reusable across iterations — an ALS driver lowers once and rebinds
/// `factors`/`mode` every sweep, hitting the cached conversions.
#[derive(Debug)]
pub struct Bindings<'b, V> {
    /// Vectors for [`VecOperand::Slot`] operands, indexed by slot.
    pub vecs: Vec<&'b DenseVector<V>>,
    /// Matrices for [`MatOperand::Slot`] operands, indexed by slot.
    pub mats: Vec<&'b DenseMatrix<V>>,
    /// Factor matrices for MTTKRP nodes (one per base mode).
    pub factors: &'b [DenseMatrix<V>],
    /// The MTTKRP product mode.
    pub mode: usize,
}

impl<'b, V> Bindings<'b, V> {
    /// No bindings — for graphs whose operands are all owned.
    pub fn none() -> Self {
        Self { vecs: Vec::new(), mats: Vec::new(), factors: &[], mode: 0 }
    }

    /// Bindings for an MTTKRP graph: the factor set and product mode.
    pub fn mttkrp(factors: &'b [DenseMatrix<V>], mode: usize) -> Self {
        Self { vecs: Vec::new(), mats: Vec::new(), factors, mode }
    }

    /// Bindings supplying slot vectors only.
    pub fn with_vecs(vecs: Vec<&'b DenseVector<V>>) -> Self {
        Self { vecs, mats: Vec::new(), factors: &[], mode: 0 }
    }

    /// Bindings supplying slot matrices only.
    pub fn with_mats(mats: Vec<&'b DenseMatrix<V>>) -> Self {
        Self { vecs: Vec::new(), mats, factors: &[], mode: 0 }
    }
}

fn resolve_vec<'x, V>(op: &'x VecOperand<V>, b: &'x Bindings<'_, V>) -> Result<&'x DenseVector<V>> {
    match op {
        VecOperand::Owned(v) => Ok(v),
        VecOperand::Slot(i) => b.vecs.get(*i).copied().ok_or_else(|| Error::OperandMismatch {
            what: format!("vector slot {i} has no binding ({} bound)", b.vecs.len()),
        }),
    }
}

fn resolve_mat<'x, V>(op: &'x MatOperand<V>, b: &'x Bindings<'_, V>) -> Result<&'x DenseMatrix<V>> {
    match op {
        MatOperand::Owned(u) => Ok(u),
        MatOperand::Slot { slot, .. } => {
            b.mats.get(*slot).copied().ok_or_else(|| Error::OperandMismatch {
                what: format!("matrix slot {slot} has no binding ({} bound)", b.mats.len()),
            })
        }
    }
}

/// The value a lowered plan produces.
#[derive(Debug, Clone)]
pub enum ExprOut<V> {
    /// A sparse COO tensor (vector-only contractions, elementwise chains).
    Coo(CooTensor<V>),
    /// A semi-sparse tensor: sparse kept modes, dense matrix-contracted
    /// modes.
    Semi(SemiCooTensor<V>),
    /// A fully dense block (every mode contracted), row-major over `dims`.
    Dense {
        /// One dimension per matrix-contracted mode, in base-mode order.
        dims: Vec<Coord>,
        /// The block values.
        vals: Vec<V>,
    },
    /// The MTTKRP factored-matrix product.
    Matrix(DenseMatrix<V>),
}

/// The base tensor a plan starts from: the leaf, or an owned copy with
/// the prologue elementwise edges constant-folded in.
#[derive(Debug)]
enum BaseTensor<'a, V> {
    Leaf(LeafTensor<'a, V>),
    Owned(CooTensor<V>),
}

impl<V> BaseTensor<'_, V> {
    fn get(&self) -> &CooTensor<V> {
        match self {
            BaseTensor::Leaf(l) => l.get(),
            BaseTensor::Owned(t) => t,
        }
    }
}

/// The cached per-mode MTTKRP routes of a lowered MTTKRP head — the route
/// table [`FusedAlsSweep`](crate::fused::FusedAlsSweep) always built, now
/// emitted by the planner: per-mode owner-computes plans where the
/// schedule analysis says a re-sort pays off (COO), or the one-time HiCOO
/// conversion. Route validation against the Combo registry is the
/// caller's job, as with [`ContractionPlan`].
#[derive(Debug)]
pub(crate) struct MttkrpHead<V> {
    hicoo: Option<HiCooTensor<V>>,
    plans: Vec<Option<MttkrpCooPlan<V>>>,
}

impl<V: Value> MttkrpHead<V> {
    pub(crate) fn new(
        x: &CooTensor<V>,
        format: FormatKind,
        block: u32,
        rank: usize,
        ctx: &Ctx,
    ) -> Result<Self> {
        let order = x.order();
        let c = counters();
        let (hicoo, plans) = match format {
            FormatKind::Coo => {
                let mut plans = Vec::with_capacity(order);
                for n in 0..order {
                    let sorted = x.sort_state().outermost() == Some(n);
                    let p = MttkrpSchedParams {
                        nnz: x.nnz(),
                        out_rows: x.shape().dim(n) as usize,
                        rank,
                        threads: ctx.threads,
                        mode_outermost_sorted: sorted,
                    };
                    let build = match ctx.mttkrp {
                        StrategyChoice::Privatized => false,
                        StrategyChoice::Owner => !sorted,
                        StrategyChoice::Auto => !sorted && resort_pays_off(&p),
                    };
                    if build {
                        c.add(CounterId::FusedPlanCacheMisses, 1);
                        plans.push(Some(MttkrpCooPlan::new(x, n, ctx)?));
                    } else {
                        plans.push(None);
                    }
                }
                (None, plans)
            }
            FormatKind::Hicoo => {
                c.add(CounterId::FusedPlanCacheMisses, 1);
                (Some(HiCooTensor::from_coo(x, block)?), Vec::new())
            }
            other => {
                return Err(Error::OperandMismatch {
                    what: format!("fused ALS sweep supports coo and hicoo, not {other}"),
                })
            }
        };
        Ok(Self { hicoo, plans })
    }

    pub(crate) fn execute(
        &self,
        x: &CooTensor<V>,
        factors: &[DenseMatrix<V>],
        n: usize,
        ctx: &Ctx,
    ) -> Result<DenseMatrix<V>> {
        let c = counters();
        c.add(CounterId::FusedEntries, x.nnz() as u64);
        match (&self.hicoo, &self.plans.get(n).and_then(|p| p.as_ref())) {
            (Some(h), _) => {
                c.add(CounterId::FusedPlanCacheHits, 1);
                mttkrp_hicoo(h, factors, n, ctx)
            }
            (None, Some(plan)) => {
                c.add(CounterId::FusedPlanCacheHits, 1);
                Ok(plan.execute(factors)?.0)
            }
            (None, None) => mttkrp_coo(x, factors, n, ctx),
        }
    }
}

#[derive(Debug)]
struct ContractHead<V> {
    plan: ContractionPlan<V>,
    vec_ops: Vec<VecOperand<V>>,
    mat_ops: Vec<MatOperand<V>>,
    epilogue: Vec<(TsOp, V)>,
}

#[derive(Debug)]
enum Head<V> {
    None,
    Contract(ContractHead<V>),
    Mttkrp(MttkrpHead<V>),
}

#[derive(Debug)]
enum SuffixOp<V> {
    Ts { op: TsOp, scalar: V },
    Tew { op: EwOp, other: CooTensor<V> },
    Ttv { mode: usize, v: VecOperand<V> },
    Ttm { mode: usize, u: MatOperand<V> },
    Mttkrp { format: FormatKind, block: u32 },
}

impl<V: Value> SuffixOp<V> {
    fn from_kind(kind: &NodeKind<'_, V>) -> Self {
        match kind {
            NodeKind::Ts { op, scalar, .. } => SuffixOp::Ts { op: *op, scalar: *scalar },
            NodeKind::Tew { op, other, .. } => SuffixOp::Tew { op: *op, other: other.clone() },
            NodeKind::Ttv { mode, v, .. } => SuffixOp::Ttv { mode: *mode, v: v.clone() },
            NodeKind::Ttm { mode, u, .. } => SuffixOp::Ttm { mode: *mode, u: u.clone() },
            NodeKind::Mttkrp { format, block, .. } => {
                SuffixOp::Mttkrp { format: *format, block: *block }
            }
            NodeKind::Leaf(_) => unreachable!("leaves are not edges"),
        }
    }
}

enum SuffixVal<V> {
    Coo(CooTensor<V>),
    Semi(SemiCooTensor<V>),
}

impl<V: Value> SuffixVal<V> {
    fn into_expr_out(self) -> ExprOut<V> {
        match self {
            SuffixVal::Coo(t) => ExprOut::Coo(t),
            SuffixVal::Semi(s) => ExprOut::Semi(s),
        }
    }
}

/// An executable lowered expression: folded base, optional fused head,
/// kernel-at-a-time suffix. Built by [`lower`]; executed (and re-executed
/// under fresh [`Bindings`]) without re-planning or re-sorting.
#[derive(Debug)]
pub struct ExprPlan<'a, V> {
    base: BaseTensor<'a, V>,
    head: Head<V>,
    suffix: Vec<SuffixOp<V>>,
    ctx: Ctx,
    fused_edges: u64,
    materialized_edges: u64,
    runs: AtomicU64,
}

impl<V: Value> ExprPlan<'_, V> {
    /// Edges the planner fused (prologue folds, head contractions, the
    /// MTTKRP head, epilogue scalars).
    pub fn fused_edges(&self) -> u64 {
        self.fused_edges
    }

    /// Edges lowered to the kernel-at-a-time suffix.
    pub fn materialized_edges(&self) -> u64 {
        self.materialized_edges
    }

    /// Whether every edge fused — executing materializes no intermediate
    /// sparse tensor.
    pub fn fully_fused(&self) -> bool {
        self.materialized_edges == 0
    }

    /// The context the plan was lowered under (and executes with).
    pub fn ctx(&self) -> &Ctx {
        &self.ctx
    }

    /// Executes the plan under `b`: the fused head runs through the
    /// per-thread workspaces, then any suffix edges run kernel-at-a-time.
    /// Re-executions count as `expr.plan_cache_hits`.
    ///
    /// # Errors
    ///
    /// Rejects unbound or mis-shaped slot operands and propagates kernel
    /// errors.
    pub fn execute(&self, b: &Bindings<'_, V>) -> Result<ExprOut<V>> {
        let _sp = span("expr", "expr.exec");
        if self.runs.fetch_add(1, Ordering::Relaxed) > 0 {
            counters().add(CounterId::ExprPlanCacheHits, 1);
        }
        let ctx = self.ctx;
        let mut cur: Option<SuffixVal<V>> = None;
        match &self.head {
            Head::None => {}
            // The MTTKRP node is terminal, so no suffix can follow it.
            Head::Mttkrp(h) => {
                return Ok(ExprOut::Matrix(h.execute(self.base.get(), b.factors, b.mode, &ctx)?));
            }
            Head::Contract(h) => {
                let vecs: Vec<&DenseVector<V>> =
                    h.vec_ops.iter().map(|o| resolve_vec(o, b)).collect::<Result<_>>()?;
                let mats: Vec<&DenseMatrix<V>> =
                    h.mat_ops.iter().map(|o| resolve_mat(o, b)).collect::<Result<_>>()?;
                if h.plan.kept().is_empty() {
                    let mut vals = h.plan.execute_full(&vecs, &mats, &ctx)?;
                    for &(op, s) in &h.epilogue {
                        for v in &mut vals {
                            *v = op.apply(*v, s);
                        }
                    }
                    let dims: Vec<Coord> = mats.iter().map(|u| u.cols() as Coord).collect();
                    debug_assert!(self.suffix.is_empty(), "no edge can follow a full contraction");
                    return Ok(ExprOut::Dense { dims, vals });
                }
                let dvol = h.plan.dense_volume(&mats);
                let kind = choose_workspace(
                    h.plan.num_fibers(),
                    dvol,
                    h.plan.base().nnz(),
                    ctx.threads,
                    ctx.dense_threshold(),
                );
                let mut vals = vec![V::ZERO; h.plan.num_fibers() * dvol];
                h.plan.execute_into(&vecs, &mats, &mut vals, &ctx, kind)?;
                for &(op, s) in &h.epilogue {
                    for v in &mut vals {
                        *v = op.apply(*v, s);
                    }
                }
                let out = if h.plan.mat_modes().is_empty() {
                    SuffixVal::Coo(h.plan.assemble_coo(vals)?)
                } else {
                    SuffixVal::Semi(h.plan.assemble_semi(vals, &mats)?)
                };
                if self.suffix.is_empty() {
                    return Ok(out.into_expr_out());
                }
                // The head output feeds materialized edges: it becomes a
                // real intermediate tensor.
                counters().add(CounterId::FusedMaterialized, 1);
                cur = Some(out);
            }
        }
        self.run_suffix(cur, b, &ctx)
    }

    /// The current suffix value as a COO tensor, converting a semi-sparse
    /// intermediate (counted as a materialization) and falling back to the
    /// base when no edge has produced a value yet.
    fn cur_coo<'s>(&'s self, cur: &'s mut Option<SuffixVal<V>>) -> &'s CooTensor<V> {
        if let Some(SuffixVal::Semi(s)) = cur {
            counters().add(CounterId::FusedMaterialized, 1);
            *cur = Some(SuffixVal::Coo(s.to_coo()));
        }
        match cur {
            None => self.base.get(),
            Some(SuffixVal::Coo(t)) => t,
            Some(SuffixVal::Semi(_)) => unreachable!("semi converted above"),
        }
    }

    /// Runs the kernel-at-a-time suffix — the materialized ablation path,
    /// mirroring the unfused chains in `pasta-algos` (including the
    /// semi-sparse densify fallback before a TTM would densify the last
    /// sparse mode).
    fn run_suffix(
        &self,
        mut cur: Option<SuffixVal<V>>,
        b: &Bindings<'_, V>,
        ctx: &Ctx,
    ) -> Result<ExprOut<V>> {
        let c = counters();
        for op in &self.suffix {
            match op {
                SuffixOp::Ts { op, scalar } => match &mut cur {
                    Some(SuffixVal::Coo(t)) => {
                        for v in t.vals_mut() {
                            *v = op.apply(*v, *scalar);
                        }
                    }
                    Some(SuffixVal::Semi(s)) => {
                        for v in s.vals_mut() {
                            *v = op.apply(*v, *scalar);
                        }
                    }
                    None => {
                        let mut t = self.base.get().clone();
                        for v in t.vals_mut() {
                            *v = op.apply(*v, *scalar);
                        }
                        cur = Some(SuffixVal::Coo(t));
                    }
                },
                SuffixOp::Tew { op, other } => {
                    let y = tew_coo_same_pattern(*op, self.cur_coo(&mut cur), other, ctx)?;
                    c.add(CounterId::FusedMaterialized, 1);
                    cur = Some(SuffixVal::Coo(y));
                }
                SuffixOp::Ttv { mode, v } => {
                    let vec = resolve_vec(v, b)?;
                    let y = ttv_coo(self.cur_coo(&mut cur), vec, *mode, ctx)?;
                    c.add(CounterId::FusedMaterialized, 1);
                    cur = Some(SuffixVal::Coo(y));
                }
                SuffixOp::Ttm { mode, u } => {
                    let mat = resolve_mat(u, b)?;
                    let next = match &cur {
                        None => ttm_coo(self.base.get(), mat, *mode, ctx)?,
                        Some(SuffixVal::Coo(t)) => ttm_coo(t, mat, *mode, ctx)?,
                        Some(SuffixVal::Semi(prev)) => {
                            if prev.dense_modes().len() + 1 >= prev.shape().order() {
                                c.add(CounterId::FusedMaterialized, 1);
                                ttm_coo(&prev.to_coo(), mat, *mode, ctx)?
                            } else {
                                ttm_scoo(prev, mat, *mode, ctx)?
                            }
                        }
                    };
                    c.add(CounterId::FusedMaterialized, 1);
                    cur = Some(SuffixVal::Semi(next));
                }
                SuffixOp::Mttkrp { format, block } => {
                    let out = {
                        let x = self.cur_coo(&mut cur);
                        match format {
                            FormatKind::Coo => mttkrp_coo(x, b.factors, b.mode, ctx)?,
                            FormatKind::Hicoo => {
                                let h = HiCooTensor::from_coo(x, *block)?;
                                mttkrp_hicoo(&h, b.factors, b.mode, ctx)?
                            }
                            other => {
                                return Err(Error::OperandMismatch {
                                    what: format!(
                                        "fused ALS sweep supports coo and hicoo, not {other}"
                                    ),
                                })
                            }
                        }
                    };
                    return Ok(ExprOut::Matrix(out));
                }
            }
        }
        match cur {
            None => Ok(ExprOut::Coo(self.base.get().clone())),
            Some(v) => Ok(v.into_expr_out()),
        }
    }
}

/// Constant-folds a tensor-scalar edge into the base at plan time.
fn fold_ts<'a, V: Value>(base: BaseTensor<'a, V>, op: TsOp, s: V) -> BaseTensor<'a, V> {
    let mut t = match base {
        BaseTensor::Owned(t) => t,
        leaf => leaf.get().clone(),
    };
    for v in t.vals_mut() {
        *v = op.apply(*v, s);
    }
    BaseTensor::Owned(t)
}

/// Whether the next contraction edge should fuse into the head, per
/// [`Ctx::fusion`] and the [`choose_fusion`] cost model.
///
/// The model sees the state *after* the candidate edge: output fibers
/// bounded by the product of the modes still sparse (capped at `nnz`),
/// the dense volume including the candidate matrix, and the chain length
/// so far.
fn edge_fuses(
    ctx: &Ctx,
    shape: &Shape,
    nnz: usize,
    kept_after: &[usize],
    dvol_after: usize,
    steps_after: usize,
) -> bool {
    match ctx.fusion {
        FusionChoice::Fuse => true,
        FusionChoice::Materialize => false,
        FusionChoice::Auto => {
            let kept_prod =
                kept_after.iter().fold(1usize, |a, &m| a.saturating_mul(shape.dim(m) as usize));
            let p = FusionParams {
                nnz,
                out_fibers: kept_prod.min(nnz),
                dense_volume: dvol_after,
                steps: steps_after,
                threads: ctx.threads,
            };
            choose_fusion(&p) == FuseDecision::Fuse
        }
    }
}

/// A live mode of the current shape during lowering: still sparse, or
/// already densified by a TTM edge.
#[derive(Clone, Copy)]
enum Live {
    Kept(usize),
    Mat(usize),
}

/// Lowers the chain rooted at `root` to an executable [`ExprPlan`].
///
/// The planner folds leading elementwise edges into the base, gathers the
/// longest fusable run of contraction edges into one [`ContractionPlan`]
/// (or builds the cached MTTKRP routes for a terminal MTTKRP edge), and
/// sends everything after the first unfusable edge to the kernel-at-a-time
/// suffix. `Ctx::fusion` forces the decision (`Fuse`/`Materialize`) or
/// delegates it per edge to [`choose_fusion`] (`Auto`). Edge decisions are
/// recorded in the `expr.*` counters.
///
/// # Errors
///
/// Rejects unknown roots, unregistered kernel routes, and operand
/// mismatches discovered while folding.
pub fn lower<'a, V: Value>(
    graph: &ExprGraph<'a, V>,
    root: ExprId,
    ctx: &Ctx,
) -> Result<ExprPlan<'a, V>> {
    if root.0 >= graph.nodes.len() {
        return Err(Error::OperandMismatch {
            what: format!("expression node {} does not exist", root.0),
        });
    }
    let _sp = span("expr", "expr.lower");
    let mut path = Vec::new();
    let mut cur = Some(root);
    while let Some(id) = cur {
        path.push(id.0);
        cur = graph.nodes[id.0].kind.input();
    }
    path.reverse();
    let leaf = match &graph.nodes[path[0]].kind {
        NodeKind::Leaf(l) => l.clone(),
        _ => unreachable!("every chain ends at a leaf"),
    };
    let ops = &path[1..];

    let mut base = BaseTensor::Leaf(leaf);
    let mut head = Head::None;
    let mut fused_edges = 0u64;
    let mut i = 0usize;

    if ctx.fusion != FusionChoice::Materialize {
        // Prologue: constant-fold leading elementwise edges into the base
        // (untimed preprocessing, like the plan sorts).
        while i < ops.len() {
            match &graph.nodes[ops[i]].kind {
                NodeKind::Ts { op, scalar, .. } => {
                    base = fold_ts(base, *op, *scalar);
                    fused_edges += 1;
                    i += 1;
                }
                NodeKind::Tew { op, other, .. } => {
                    base = BaseTensor::Owned(tew_coo_same_pattern(*op, base.get(), other, ctx)?);
                    fused_edges += 1;
                    i += 1;
                }
                _ => break,
            }
        }
        if i < ops.len() {
            match &graph.nodes[ops[i]].kind {
                NodeKind::Mttkrp { rank, format, block, .. } => {
                    KernelPlan::new(Kernel::Mttkrp, *format, BackendKind::Cpu, ctx)?;
                    head = Head::Mttkrp(MttkrpHead::new(base.get(), *format, *block, *rank, ctx)?);
                    fused_edges += 1;
                    i += 1;
                }
                NodeKind::Ttv { .. } | NodeKind::Ttm { .. } => {
                    let shape = base.get().shape().clone();
                    let nnz = base.get().nnz();
                    let mut live: Vec<Live> = (0..shape.order()).map(Live::Kept).collect();
                    let mut vec_pairs: Vec<(usize, VecOperand<V>)> = Vec::new();
                    let mut mat_pairs: Vec<(usize, MatOperand<V>)> = Vec::new();
                    let mut epilogue: Vec<(TsOp, V)> = Vec::new();
                    let mut dvol = 1usize;
                    while i < ops.len() {
                        match &graph.nodes[ops[i]].kind {
                            NodeKind::Ttv { mode, v, .. } => {
                                if !epilogue.is_empty() {
                                    break;
                                }
                                // A TTV on a TTM-densified mode contracts a
                                // dense rank dimension — not expressible in
                                // one fused pass; the suffix handles it.
                                let bm = match live[*mode] {
                                    Live::Kept(b) => b,
                                    Live::Mat(_) => break,
                                };
                                let kept_after: Vec<usize> = live
                                    .iter()
                                    .enumerate()
                                    .filter(|&(k, l)| k != *mode && matches!(l, Live::Kept(_)))
                                    .map(|(_, l)| match l {
                                        Live::Kept(b) => *b,
                                        Live::Mat(b) => *b,
                                    })
                                    .collect();
                                let steps = vec_pairs.len() + mat_pairs.len() + 1;
                                if !edge_fuses(ctx, &shape, nnz, &kept_after, dvol, steps) {
                                    break;
                                }
                                vec_pairs.push((bm, v.clone()));
                                live.remove(*mode);
                                fused_edges += 1;
                                i += 1;
                            }
                            NodeKind::Ttm { mode, u, .. } => {
                                if !epilogue.is_empty() {
                                    break;
                                }
                                let bm = match live[*mode] {
                                    Live::Kept(b) => b,
                                    Live::Mat(_) => break,
                                };
                                let kept_after: Vec<usize> = live
                                    .iter()
                                    .enumerate()
                                    .filter(|&(k, l)| k != *mode && matches!(l, Live::Kept(_)))
                                    .map(|(_, l)| match l {
                                        Live::Kept(b) => *b,
                                        Live::Mat(b) => *b,
                                    })
                                    .collect();
                                let steps = vec_pairs.len() + mat_pairs.len() + 1;
                                let cols = u.cols();
                                if !edge_fuses(ctx, &shape, nnz, &kept_after, dvol * cols, steps) {
                                    break;
                                }
                                mat_pairs.push((bm, u.clone()));
                                live[*mode] = Live::Mat(bm);
                                dvol *= cols;
                                fused_edges += 1;
                                i += 1;
                            }
                            NodeKind::Ts { op, scalar, .. } => {
                                // Scalar edges after the contractions apply
                                // to the head output values in place.
                                epilogue.push((*op, *scalar));
                                fused_edges += 1;
                                i += 1;
                            }
                            _ => break,
                        }
                    }
                    if !vec_pairs.is_empty() || !mat_pairs.is_empty() {
                        vec_pairs.sort_by_key(|&(m, _)| m);
                        mat_pairs.sort_by_key(|&(m, _)| m);
                        let vms: Vec<usize> = vec_pairs.iter().map(|p| p.0).collect();
                        let mms: Vec<usize> = mat_pairs.iter().map(|p| p.0).collect();
                        if !vms.is_empty() {
                            KernelPlan::new(Kernel::Ttv, FormatKind::Coo, BackendKind::Cpu, ctx)?;
                        }
                        if !mms.is_empty() {
                            KernelPlan::new(Kernel::Ttm, FormatKind::Coo, BackendKind::Cpu, ctx)?;
                        }
                        let plan = ContractionPlan::new(base.get().clone(), &vms, &mms, ctx)?;
                        head = Head::Contract(ContractHead {
                            plan,
                            vec_ops: vec_pairs.into_iter().map(|p| p.1).collect(),
                            mat_ops: mat_pairs.into_iter().map(|p| p.1).collect(),
                            epilogue,
                        });
                    }
                }
                NodeKind::Leaf(_) | NodeKind::Ts { .. } | NodeKind::Tew { .. } => {
                    unreachable!("prologue consumed elementwise edges")
                }
            }
        }
    }
    let mut suffix = Vec::with_capacity(ops.len() - i);
    for &idx in &ops[i..] {
        suffix.push(SuffixOp::from_kind(&graph.nodes[idx].kind));
    }
    let materialized_edges = suffix.len() as u64;
    let c = counters();
    c.add(CounterId::ExprPlans, 1);
    c.add(CounterId::ExprFusedEdges, fused_edges);
    c.add(CounterId::ExprMaterializedEdges, materialized_edges);
    Ok(ExprPlan {
        base,
        head,
        suffix,
        ctx: *ctx,
        fused_edges,
        materialized_edges,
        runs: AtomicU64::new(0),
    })
}

/// One pinned expression-graph route of the conformance matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ExprRoute {
    /// Which graph shape: `chain` (TEW→TTV→TTM fused end-to-end), `ttv`
    /// (multi-mode TTV product), `contract` (full contraction to a dense
    /// block), `mttkrp` (the planner-cached MTTKRP head).
    pub label: &'static str,
    /// The leaf tensor format.
    pub format: FormatKind,
    /// Where the plan executes.
    pub backend: BackendKind,
}

impl std::fmt::Display for ExprRoute {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "expr-{}/{}/{}", self.label, self.format, self.backend)
    }
}

/// Every expression-graph shape the conformance matrix pins against
/// composed kernel-at-a-time evaluation. Like [`registry`] and
/// [`fused_registry`], this is the single source of coverage truth: the
/// matrix generates `expr-*` cells from it and completeness tests check
/// both directions.
///
/// [`registry`]: crate::pipeline::registry
/// [`fused_registry`]: crate::pipeline::fused_registry
pub fn expr_registry() -> Vec<ExprRoute> {
    use BackendKind::Cpu;
    use FormatKind::Coo;
    vec![
        ExprRoute { label: "chain", format: Coo, backend: Cpu },
        ExprRoute { label: "ttv", format: Coo, backend: Cpu },
        ExprRoute { label: "contract", format: Coo, backend: Cpu },
        ExprRoute { label: "mttkrp", format: Coo, backend: Cpu },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fused::FusedTtvPlan;
    use pasta_core::{seeded_matrix, seeded_vector};

    fn test_tensor(dims: &[u32], nnz: usize, seed: u64) -> CooTensor<f64> {
        let shape = Shape::new(dims.to_vec());
        let mut x = CooTensor::new(shape);
        let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        for _ in 0..nnz {
            let coords: Vec<Coord> = dims.iter().map(|&d| (next() % d as u64) as Coord).collect();
            let v = (next() % 1000) as f64 / 100.0 - 5.0;
            x.push(&coords, v).unwrap();
        }
        x.dedup_sum();
        x
    }

    #[test]
    fn ttv_graph_is_bit_identical_to_canned_plan() {
        let x = test_tensor(&[7, 6, 5, 4], 160, 3);
        let ctx = Ctx::sequential();
        let v1 = seeded_vector::<f64>(6, 11);
        let v2 = seeded_vector::<f64>(4, 12);
        let canned = FusedTtvPlan::new(&x, &[1, 3], &ctx).unwrap();
        let want = canned.execute(&[&v1, &v2], &ctx).unwrap();
        let mut g = ExprGraph::new();
        let leaf = g.leaf(&x);
        let root = g
            .ttv_multi(
                leaf,
                &[1, 3],
                vec![VecOperand::Owned(v1.clone()), VecOperand::Owned(v2.clone())],
            )
            .unwrap();
        let plan = lower(&g, root, &ctx).unwrap();
        assert!(plan.fully_fused());
        match plan.execute(&Bindings::none()).unwrap() {
            ExprOut::Coo(y) => {
                assert_eq!(y.nnz(), want.nnz());
                for (a, b) in y.vals().iter().zip(want.vals()) {
                    assert_eq!(a, b, "graph TTV must be bit-identical to the canned plan");
                }
            }
            other => panic!("expected COO, got {other:?}"),
        }
    }

    #[test]
    fn mixed_chain_fuses_end_to_end_with_zero_materialization() {
        let x = test_tensor(&[6, 5, 4], 120, 9);
        let ctx = Ctx::sequential();
        let y = x.like_pattern(1.5);
        let v = seeded_vector::<f64>(5, 21);
        let u = seeded_matrix::<f64>(4, 3, 22);
        let mut g = ExprGraph::new();
        let leaf = g.leaf(&x);
        let t = g.tew(leaf, EwOp::Add, y.clone()).unwrap();
        let t = g.ttv(t, 1, VecOperand::Owned(v.clone())).unwrap();
        let root = g.ttm(t, 1, MatOperand::Owned(u.clone())).unwrap();
        let plan = lower(&g, root, &ctx).unwrap();
        assert!(plan.fully_fused());
        assert_eq!(plan.fused_edges(), 3);

        pasta_obs::set_counting(true);
        let before = counters().snapshot();
        let got = match plan.execute(&Bindings::none()).unwrap() {
            ExprOut::Semi(s) => s.to_coo().to_dense(1 << 12),
            other => panic!("expected semi-sparse, got {other:?}"),
        };
        let after = counters().snapshot();
        assert_eq!(
            after[CounterId::FusedMaterialized],
            before[CounterId::FusedMaterialized],
            "fused chain must materialize nothing"
        );

        // Composed reference: tew, then ttv, then ttm, one kernel at a time.
        let step = tew_coo_same_pattern(EwOp::Add, &x, &y, &ctx).unwrap();
        let step = ttv_coo(&step, &v, 1, &ctx).unwrap();
        let want = ttm_coo(&step, &u, 1, &ctx).unwrap().to_coo().to_dense(1 << 12);
        assert_eq!(got.len(), want.len());
        for (a, b) in got.iter().zip(&want) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn materialize_route_matches_fused_route() {
        let x = test_tensor(&[6, 5, 4], 100, 31);
        let v = seeded_vector::<f64>(5, 7);
        let u = seeded_matrix::<f64>(4, 2, 8);
        let build = |g: &mut ExprGraph<'_, f64>, leaf: ExprId| {
            let t = g.ttv(leaf, 1, VecOperand::Owned(v.clone())).unwrap();
            g.ttm(t, 1, MatOperand::Owned(u.clone())).unwrap()
        };
        let mut ctx = Ctx::sequential();
        ctx.fusion = FusionChoice::Fuse;
        let mut g1 = ExprGraph::new();
        let l1 = g1.leaf(&x);
        let r1 = build(&mut g1, l1);
        let fused = lower(&g1, r1, &ctx).unwrap();
        assert!(fused.fully_fused());

        ctx.fusion = FusionChoice::Materialize;
        let mut g2 = ExprGraph::new();
        let l2 = g2.leaf(&x);
        let r2 = build(&mut g2, l2);
        let mat = lower(&g2, r2, &ctx).unwrap();
        assert_eq!(mat.fused_edges(), 0);
        assert_eq!(mat.materialized_edges(), 2);

        let a = match fused.execute(&Bindings::none()).unwrap() {
            ExprOut::Semi(s) => s.to_coo().to_dense(1 << 12),
            other => panic!("unexpected {other:?}"),
        };
        let b = match mat.execute(&Bindings::none()).unwrap() {
            ExprOut::Semi(s) => s.to_coo().to_dense(1 << 12),
            other => panic!("unexpected {other:?}"),
        };
        for (p, q) in a.iter().zip(&b) {
            assert!((p - q).abs() < 1e-9, "{p} vs {q}");
        }
    }

    #[test]
    fn full_contraction_produces_dense_block() {
        let x = test_tensor(&[5, 4, 3], 40, 13);
        let ctx = Ctx::sequential();
        let mats: Vec<DenseMatrix<f64>> =
            vec![seeded_matrix(5, 2, 4), seeded_matrix(4, 2, 5), seeded_matrix(3, 2, 6)];
        let mut g = ExprGraph::new();
        let leaf = g.leaf(&x);
        let root = g
            .ttm_all_but(leaf, 3, mats.iter().map(|m| MatOperand::Owned(m.clone())).collect())
            .unwrap();
        let plan = lower(&g, root, &ctx).unwrap();
        let got = match plan.execute(&Bindings::none()).unwrap() {
            ExprOut::Dense { dims, vals } => {
                assert_eq!(dims, vec![2, 2, 2]);
                vals
            }
            other => panic!("expected dense, got {other:?}"),
        };
        let mut want = vec![0.0f64; 8];
        for e in 0..x.nnz() {
            let v = x.vals()[e];
            for r0 in 0..2 {
                for r1 in 0..2 {
                    for r2 in 0..2 {
                        want[r0 * 4 + r1 * 2 + r2] += v
                            * mats[0].get(x.mode_inds(0)[e] as usize, r0)
                            * mats[1].get(x.mode_inds(1)[e] as usize, r1)
                            * mats[2].get(x.mode_inds(2)[e] as usize, r2);
                    }
                }
            }
        }
        for (a, b) in got.iter().zip(&want) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn mttkrp_graph_matches_direct_kernel_and_rebinds_modes() {
        let x = test_tensor(&[6, 5, 4], 80, 23);
        let ctx = Ctx::sequential();
        let r = 3;
        let factors: Vec<DenseMatrix<f64>> =
            (0..3).map(|m| seeded_matrix(x.shape().dim(m) as usize, r, 50 + m as u64)).collect();
        let mut g = ExprGraph::new();
        let leaf = g.leaf(&x);
        let root = g.mttkrp(leaf, r, FormatKind::Coo, 0).unwrap();
        let plan = lower(&g, root, &ctx).unwrap();
        for n in 0..3 {
            let got = match plan.execute(&Bindings::mttkrp(&factors, n)).unwrap() {
                ExprOut::Matrix(m) => m,
                other => panic!("expected matrix, got {other:?}"),
            };
            let want = mttkrp_coo(&x, &factors, n, &ctx).unwrap();
            assert_eq!(got.as_slice(), want.as_slice(), "mode {n} must be bit-identical");
        }
    }

    #[test]
    fn slot_operands_rebind_across_executions() {
        let x = test_tensor(&[6, 5, 4], 60, 41);
        let ctx = Ctx::sequential();
        let mut g = ExprGraph::new();
        let leaf = g.leaf(&x);
        let root = g.ttv(leaf, 2, VecOperand::Slot(0)).unwrap();
        let plan = lower(&g, root, &ctx).unwrap();
        pasta_obs::set_counting(true);
        let before = counters().snapshot();
        for seed in [1u64, 2, 3] {
            let v = seeded_vector::<f64>(4, seed);
            let got = match plan.execute(&Bindings::with_vecs(vec![&v])).unwrap() {
                ExprOut::Coo(t) => t,
                other => panic!("unexpected {other:?}"),
            };
            let want = ttv_coo(&x, &v, 2, &ctx).unwrap();
            let a = got.to_dense(1 << 12);
            let b = want.to_dense(1 << 12);
            for (p, q) in a.iter().zip(&b) {
                assert!((p - q).abs() < 1e-9, "{p} vs {q}");
            }
        }
        let after = counters().snapshot();
        assert!(
            after[CounterId::ExprPlanCacheHits] >= before[CounterId::ExprPlanCacheHits] + 2,
            "re-executions must count as plan cache hits"
        );
        assert!(plan.execute(&Bindings::none()).is_err(), "unbound slot must be rejected");
    }

    #[test]
    fn lowering_counts_edges() {
        let x = test_tensor(&[6, 5, 4], 60, 43);
        let ctx = Ctx::sequential();
        let v = seeded_vector::<f64>(4, 3);
        pasta_obs::set_counting(true);
        let before = counters().snapshot();
        let mut g = ExprGraph::new();
        let leaf = g.leaf(&x);
        let t = g.ts(leaf, TsOp::Mul, 2.0).unwrap();
        let root = g.ttv(t, 2, VecOperand::Owned(v)).unwrap();
        let plan = lower(&g, root, &ctx).unwrap();
        let after = counters().snapshot();
        assert_eq!(after[CounterId::ExprPlans], before[CounterId::ExprPlans] + 1);
        assert_eq!(after[CounterId::ExprFusedEdges], before[CounterId::ExprFusedEdges] + 2);
        assert_eq!(
            after[CounterId::ExprMaterializedEdges],
            before[CounterId::ExprMaterializedEdges]
        );
        // The folded TS prologue is arithmetically identical to ts_coo.
        match plan.execute(&Bindings::none()).unwrap() {
            ExprOut::Coo(got) => {
                let step = crate::ts_coo(TsOp::Mul, &x, 2.0, &ctx).unwrap();
                let want = ttv_coo(&step, &seeded_vector::<f64>(4, 3), 2, &ctx).unwrap();
                for (a, b) in got.vals().iter().zip(want.vals()) {
                    assert!((a - b).abs() < 1e-12);
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn builder_rejects_malformed_graphs() {
        let x = test_tensor(&[4, 4, 4], 10, 1);
        let mut g = ExprGraph::new();
        let leaf = g.leaf(&x);
        // Out-of-range mode.
        assert!(g.ttv(leaf, 3, VecOperand::Slot(0)).is_err());
        // Owned-vector length mismatch.
        assert!(g.ttv(leaf, 0, VecOperand::Owned(DenseVector::from_vec(vec![1.0f64; 3]))).is_err());
        // TEW off a non-leaf input.
        let t = g.ts(leaf, TsOp::Add, 1.0).unwrap();
        assert!(g.tew(t, EwOp::Add, x.like_pattern(1.0)).is_err());
        // MTTKRP must be terminal.
        let mk = g.mttkrp(leaf, 2, FormatKind::Coo, 0).unwrap();
        assert!(g.ts(mk, TsOp::Add, 1.0).is_err());
        // Zero-rank matrix operand.
        assert!(g.ttm(leaf, 0, MatOperand::Slot { slot: 0, cols: 0 }).is_err());
    }

    #[test]
    fn ttv_after_ttm_on_same_mode_falls_back_to_suffix() {
        let x = test_tensor(&[6, 5, 4], 80, 51);
        let ctx = Ctx::sequential();
        let u = seeded_matrix::<f64>(5, 3, 61);
        let v = seeded_vector::<f64>(3, 62);
        let mut g = ExprGraph::new();
        let leaf = g.leaf(&x);
        let t = g.ttm(leaf, 1, MatOperand::Owned(u.clone())).unwrap();
        // Contracts the densified rank dimension — unfusable.
        let root = g.ttv(t, 1, VecOperand::Owned(v.clone())).unwrap();
        let plan = lower(&g, root, &ctx).unwrap();
        assert_eq!(plan.materialized_edges(), 1);
        let got = match plan.execute(&Bindings::none()).unwrap() {
            ExprOut::Coo(t) => t.to_dense(1 << 12),
            other => panic!("unexpected {other:?}"),
        };
        let step = ttm_coo(&x, &u, 1, &ctx).unwrap().to_coo();
        let want = ttv_coo(&step, &v, 1, &ctx).unwrap().to_dense(1 << 12);
        assert_eq!(got.len(), want.len());
        for (a, b) in got.iter().zip(&want) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn expr_registry_rows_are_unique() {
        let rows = expr_registry();
        assert_eq!(rows.len(), 4);
        let mut ids: Vec<String> = rows.iter().map(|r| r.to_string()).collect();
        ids.sort();
        let before = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), before);
        assert!(ids.iter().all(|s| s.starts_with("expr-")));
    }
}
