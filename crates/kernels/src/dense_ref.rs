//! Dense reference oracles.
//!
//! Brute-force dense implementations of every kernel, used by the unit,
//! integration and property tests to validate the sparse kernels. They
//! densify the tensor and loop over every entry — only usable on small
//! shapes, which is exactly what tests need.

use pasta_core::{CooTensor, DenseMatrix, DenseVector, Shape, Value};

/// Upper bound on dense entries a test oracle will materialize.
pub const ORACLE_MAX_ENTRIES: usize = 1 << 22;

/// Dense TTV: `Y = X ×_n v` computed entry by entry.
///
/// Returns the dense row-major output of shape `X.shape().remove_mode(n)`.
///
/// # Panics
///
/// Panics if the dense size exceeds [`ORACLE_MAX_ENTRIES`] or operands
/// mismatch.
pub fn ttv_dense<V: Value>(x: &CooTensor<V>, v: &DenseVector<V>, n: usize) -> (Shape, Vec<V>) {
    assert_eq!(v.len(), x.shape().dim(n) as usize, "vector length must match mode dim");
    let out_shape = x.shape().remove_mode(n);
    assert!(out_shape.num_entries() <= ORACLE_MAX_ENTRIES as f64);
    let mut out = vec![V::ZERO; out_shape.num_entries() as usize];
    for (coords, val) in x.iter() {
        let k = coords[n] as usize;
        let mut oc = coords.clone();
        oc.remove(n);
        out[out_shape.linearize(&oc)] += val * v[k];
    }
    (out_shape, out)
}

/// Dense TTM: `Y = X ×_n U` with `U ∈ R^{I_n × R}`.
///
/// Returns the dense row-major output of shape with mode `n` replaced by `R`.
///
/// # Panics
///
/// Panics if the dense size exceeds [`ORACLE_MAX_ENTRIES`] or operands
/// mismatch.
pub fn ttm_dense<V: Value>(x: &CooTensor<V>, u: &DenseMatrix<V>, n: usize) -> (Shape, Vec<V>) {
    assert_eq!(u.rows(), x.shape().dim(n) as usize, "matrix rows must match mode dim");
    let r = u.cols();
    let out_shape = x.shape().replace_mode(n, r as u32);
    assert!(out_shape.num_entries() <= ORACLE_MAX_ENTRIES as f64);
    let mut out = vec![V::ZERO; out_shape.num_entries() as usize];
    for (coords, val) in x.iter() {
        let k = coords[n] as usize;
        let mut oc = coords.clone();
        let urow = u.row(k);
        for (rr, &uval) in urow.iter().enumerate().take(r) {
            oc[n] = rr as u32;
            out[out_shape.linearize(&oc)] += val * uval;
        }
    }
    (out_shape, out)
}

/// Dense MTTKRP in mode `n` for an arbitrary-order tensor:
/// `Ã(i_n, r) = Σ_x val(x) · ∏_{m≠n} U^{(m)}(i_m, r)`.
///
/// `factors[m]` must have `X.shape().dim(m)` rows and a common column count
/// `R`; `factors[n]` is ignored (only its shape participates in CPD).
///
/// # Panics
///
/// Panics on operand mismatch.
pub fn mttkrp_dense<V: Value>(
    x: &CooTensor<V>,
    factors: &[DenseMatrix<V>],
    n: usize,
) -> DenseMatrix<V> {
    let order = x.order();
    assert_eq!(factors.len(), order, "one factor per mode");
    let r = factors[0].cols();
    for (m, f) in factors.iter().enumerate() {
        assert_eq!(f.cols(), r, "factor {m} has inconsistent rank");
        assert_eq!(f.rows(), x.shape().dim(m) as usize, "factor {m} has wrong row count");
    }
    let mut out = DenseMatrix::zeros(x.shape().dim(n) as usize, r);
    for (coords, val) in x.iter() {
        let row = out.row_mut(coords[n] as usize);
        for (rr, cell) in row.iter_mut().enumerate() {
            let mut prod = val;
            for m in 0..order {
                if m != n {
                    prod *= factors[m].get(coords[m] as usize, rr);
                }
            }
            *cell += prod;
        }
    }
    out
}

/// Compares two dense arrays with per-element approximate equality.
pub fn dense_approx_eq<V: Value>(a: &[V], b: &[V], tol: f64) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(&x, &y)| x.approx_eq(y, tol))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pasta_core::Shape;

    fn small() -> CooTensor<f64> {
        CooTensor::from_entries(
            Shape::new(vec![2, 3, 4]),
            vec![
                (vec![0, 0, 0], 1.0),
                (vec![0, 2, 3], 2.0),
                (vec![1, 1, 2], 3.0),
                (vec![1, 2, 0], 4.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn ttv_by_hand() {
        let x = small();
        let v = DenseVector::from_vec(vec![1.0, 10.0, 100.0, 1000.0]);
        let (shape, out) = ttv_dense(&x, &v, 2);
        assert_eq!(shape.dims(), &[2, 3]);
        assert_eq!(out[shape.linearize(&[0, 0])], 1.0); // 1*v[0]
        assert_eq!(out[shape.linearize(&[0, 2])], 2000.0); // 2*v[3]
        assert_eq!(out[shape.linearize(&[1, 1])], 300.0); // 3*v[2]
        assert_eq!(out[shape.linearize(&[1, 2])], 4.0); // 4*v[0]
    }

    #[test]
    fn ttm_by_hand() {
        let x = small();
        let u = DenseMatrix::from_fn(4, 2, |i, j| (i + 1) as f64 * if j == 0 { 1.0 } else { -1.0 });
        let (shape, out) = ttm_dense(&x, &u, 2);
        assert_eq!(shape.dims(), &[2, 3, 2]);
        // Entry (0,0,·) comes from x[0,0,0]=1 times row 0 of U = (1, -1).
        assert_eq!(out[shape.linearize(&[0, 0, 0])], 1.0);
        assert_eq!(out[shape.linearize(&[0, 0, 1])], -1.0);
        // Entry (1,1,·): x[1,1,2]=3 times row 2 = (3, -3) -> (9, -9).
        assert_eq!(out[shape.linearize(&[1, 1, 0])], 9.0);
        assert_eq!(out[shape.linearize(&[1, 1, 1])], -9.0);
    }

    #[test]
    fn mttkrp_by_hand_third_order() {
        // Single non-zero: result row i gets val * B[j,:] ∘ C[k,:].
        let x =
            CooTensor::<f64>::from_entries(Shape::new(vec![2, 2, 2]), vec![(vec![1, 0, 1], 2.0)])
                .unwrap();
        let a = DenseMatrix::zeros(2, 3);
        let b = DenseMatrix::from_fn(2, 3, |i, j| (i * 3 + j) as f64); // row 0: 0,1,2
        let c = DenseMatrix::from_fn(2, 3, |i, j| (i + j) as f64); // row 1: 1,2,3
        let out = mttkrp_dense(&x, &[a, b, c], 0);
        assert_eq!(out.row(0), &[0.0, 0.0, 0.0]);
        assert_eq!(out.row(1), &[0.0, 4.0, 12.0]); // 2 * (0,1,2)∘(1,2,3)
    }

    #[test]
    fn mttkrp_fourth_order() {
        let x = CooTensor::<f64>::from_entries(
            Shape::new(vec![2, 2, 2, 2]),
            vec![(vec![0, 1, 1, 0], 1.0), (vec![0, 0, 0, 0], 1.0)],
        )
        .unwrap();
        let fs: Vec<DenseMatrix<f64>> =
            (0..4).map(|m| DenseMatrix::from_fn(2, 2, |i, j| (m + i + j) as f64 + 1.0)).collect();
        let out = mttkrp_dense(&x, &fs, 1);
        // Row 1 from first nnz: 1 * f0[0,:] ∘ f2[1,:] ∘ f3[0,:]
        let expect_r0 = fs[0].get(0, 0) * fs[2].get(1, 0) * fs[3].get(0, 0);
        assert_eq!(out.get(1, 0), expect_r0);
        // Row 0 from second nnz.
        let expect2 = fs[0].get(0, 1) * fs[2].get(0, 1) * fs[3].get(0, 1);
        assert_eq!(out.get(0, 1), expect2);
    }

    #[test]
    fn approx_eq_helper() {
        assert!(dense_approx_eq(&[1.0_f32, 2.0], &[1.0, 2.0 + 1e-7], 1e-5));
        assert!(!dense_approx_eq(&[1.0_f32], &[1.0, 2.0], 1e-5));
        assert!(!dense_approx_eq(&[1.0_f32], &[1.5], 1e-5));
    }
}
