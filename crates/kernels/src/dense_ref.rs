//! Dense reference oracles.
//!
//! Brute-force dense implementations of every kernel, used by the unit,
//! integration, property and conformance tests to validate the sparse
//! kernels. They densify the tensor and loop over every entry — only usable
//! on small shapes, which is exactly what tests need.
//!
//! All oracles reject mismatched operands with the same typed
//! [`Error`] values the kernels themselves use, so error
//! paths can be differentially tested too.

use crate::pipeline::{EwOp, TsOp};
use pasta_core::{CooTensor, DenseMatrix, DenseVector, Error, Result, Shape, Value};

/// Upper bound on dense entries a test oracle will materialize.
pub const ORACLE_MAX_ENTRIES: usize = 1 << 22;

/// Rejects dense outputs too large for a brute-force oracle.
fn check_oracle_size(shape: &Shape) -> Result<()> {
    if shape.num_entries() > ORACLE_MAX_ENTRIES as f64 {
        return Err(Error::OperandMismatch {
            what: format!(
                "dense oracle output of {} entries exceeds the {ORACLE_MAX_ENTRIES} limit",
                shape.num_entries()
            ),
        });
    }
    Ok(())
}

/// Dense TTV: `Y = X ×_n v` computed entry by entry.
///
/// Returns the dense row-major output of shape `X.shape().remove_mode(n)`.
///
/// # Errors
///
/// Returns [`Error::InvalidMode`] for an out-of-range mode,
/// [`Error::OperandMismatch`] if the vector length does not match the mode
/// dimension or the dense size exceeds [`ORACLE_MAX_ENTRIES`].
pub fn ttv_dense<V: Value>(
    x: &CooTensor<V>,
    v: &DenseVector<V>,
    n: usize,
) -> Result<(Shape, Vec<V>)> {
    x.shape().check_mode(n)?;
    if v.len() != x.shape().dim(n) as usize {
        return Err(Error::OperandMismatch {
            what: format!("vector length {} vs mode {n} dimension {}", v.len(), x.shape().dim(n)),
        });
    }
    let out_shape = x.shape().remove_mode(n);
    check_oracle_size(&out_shape)?;
    let mut out = vec![V::ZERO; out_shape.num_entries() as usize];
    for (coords, val) in x.iter() {
        let k = coords[n] as usize;
        let mut oc = coords.clone();
        oc.remove(n);
        out[out_shape.linearize(&oc)] += val * v[k];
    }
    Ok((out_shape, out))
}

/// Dense TTM: `Y = X ×_n U` with `U ∈ R^{I_n × R}`.
///
/// Returns the dense row-major output of shape with mode `n` replaced by `R`.
///
/// # Errors
///
/// Returns [`Error::InvalidMode`] for an out-of-range mode,
/// [`Error::OperandMismatch`] if the matrix row count does not match the mode
/// dimension or the dense size exceeds [`ORACLE_MAX_ENTRIES`].
pub fn ttm_dense<V: Value>(
    x: &CooTensor<V>,
    u: &DenseMatrix<V>,
    n: usize,
) -> Result<(Shape, Vec<V>)> {
    x.shape().check_mode(n)?;
    if u.rows() != x.shape().dim(n) as usize {
        return Err(Error::OperandMismatch {
            what: format!("matrix rows {} vs mode {n} dimension {}", u.rows(), x.shape().dim(n)),
        });
    }
    let r = u.cols();
    let out_shape = x.shape().replace_mode(n, r as u32);
    check_oracle_size(&out_shape)?;
    let mut out = vec![V::ZERO; out_shape.num_entries() as usize];
    for (coords, val) in x.iter() {
        let k = coords[n] as usize;
        let mut oc = coords.clone();
        let urow = u.row(k);
        for (rr, &uval) in urow.iter().enumerate().take(r) {
            oc[n] = rr as u32;
            out[out_shape.linearize(&oc)] += val * uval;
        }
    }
    Ok((out_shape, out))
}

/// Dense MTTKRP in mode `n` for an arbitrary-order tensor:
/// `Ã(i_n, r) = Σ_x val(x) · ∏_{m≠n} U^{(m)}(i_m, r)`.
///
/// `factors[m]` must have `X.shape().dim(m)` rows and a common column count
/// `R`; `factors[n]` is ignored (only its shape participates in CPD).
///
/// # Errors
///
/// Returns [`Error::InvalidMode`] for an out-of-range mode and
/// [`Error::OperandMismatch`] for a wrong factor count, inconsistent ranks or
/// wrong factor row counts.
pub fn mttkrp_dense<V: Value>(
    x: &CooTensor<V>,
    factors: &[DenseMatrix<V>],
    n: usize,
) -> Result<DenseMatrix<V>> {
    let order = x.order();
    x.shape().check_mode(n)?;
    if factors.len() != order {
        return Err(Error::OperandMismatch {
            what: format!("{} factors for a tensor of order {order}", factors.len()),
        });
    }
    let r = factors[0].cols();
    for (m, f) in factors.iter().enumerate() {
        if f.cols() != r {
            return Err(Error::OperandMismatch {
                what: format!("factor {m} has rank {} but factor 0 has rank {r}", f.cols()),
            });
        }
        if f.rows() != x.shape().dim(m) as usize {
            return Err(Error::OperandMismatch {
                what: format!(
                    "factor {m} has {} rows but mode {m} has dimension {}",
                    f.rows(),
                    x.shape().dim(m)
                ),
            });
        }
    }
    let mut out = DenseMatrix::zeros(x.shape().dim(n) as usize, r);
    for (coords, val) in x.iter() {
        let row = out.row_mut(coords[n] as usize);
        for (rr, cell) in row.iter_mut().enumerate() {
            let mut prod = val;
            for m in 0..order {
                if m != n {
                    prod *= factors[m].get(coords[m] as usize, rr);
                }
            }
            *cell += prod;
        }
    }
    Ok(out)
}

/// Dense TEW for same-pattern operands: the dense image of `X op Y` where
/// `op` is applied to each shared stored entry (structural zeros stay zero,
/// exactly like the sparse kernels' semantics).
///
/// # Errors
///
/// Returns [`Error::PatternMismatch`] if the tensors differ in shape or
/// pattern, [`Error::DivisionByZero`] for `Div` with a zero stored in `y`,
/// and [`Error::OperandMismatch`] if the dense size exceeds
/// [`ORACLE_MAX_ENTRIES`].
pub fn tew_dense<V: Value>(op: EwOp, x: &CooTensor<V>, y: &CooTensor<V>) -> Result<Vec<V>> {
    if !x.same_pattern(y) {
        return Err(Error::PatternMismatch);
    }
    check_oracle_size(x.shape())?;
    let mut out = vec![V::ZERO; x.shape().num_entries() as usize];
    for ((coords, xv), &yv) in x.iter().zip(y.vals()) {
        if op == EwOp::Div && yv == V::ZERO {
            return Err(Error::DivisionByZero);
        }
        out[x.shape().linearize(&coords)] += op.apply(xv, yv);
    }
    Ok(out)
}

/// Dense TS: the dense image of `X op s` applied to the stored entries only
/// (structural zeros stay zero, matching the sparse kernels).
///
/// # Errors
///
/// Returns [`Error::DivisionByZero`] for `Div` with `s == 0` and
/// [`Error::OperandMismatch`] if the dense size exceeds
/// [`ORACLE_MAX_ENTRIES`].
pub fn ts_dense<V: Value>(op: TsOp, x: &CooTensor<V>, s: V) -> Result<Vec<V>> {
    if op == TsOp::Div && s == V::ZERO {
        return Err(Error::DivisionByZero);
    }
    check_oracle_size(x.shape())?;
    let mut out = vec![V::ZERO; x.shape().num_entries() as usize];
    for (coords, val) in x.iter() {
        out[x.shape().linearize(&coords)] += op.apply(val, s);
    }
    Ok(out)
}

/// Compares two dense arrays with per-element approximate equality.
pub fn dense_approx_eq<V: Value>(a: &[V], b: &[V], tol: f64) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(&x, &y)| x.approx_eq(y, tol))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pasta_core::Shape;

    fn small() -> CooTensor<f64> {
        CooTensor::from_entries(
            Shape::new(vec![2, 3, 4]),
            vec![
                (vec![0, 0, 0], 1.0),
                (vec![0, 2, 3], 2.0),
                (vec![1, 1, 2], 3.0),
                (vec![1, 2, 0], 4.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn ttv_by_hand() {
        let x = small();
        let v = DenseVector::from_vec(vec![1.0, 10.0, 100.0, 1000.0]);
        let (shape, out) = ttv_dense(&x, &v, 2).unwrap();
        assert_eq!(shape.dims(), &[2, 3]);
        assert_eq!(out[shape.linearize(&[0, 0])], 1.0); // 1*v[0]
        assert_eq!(out[shape.linearize(&[0, 2])], 2000.0); // 2*v[3]
        assert_eq!(out[shape.linearize(&[1, 1])], 300.0); // 3*v[2]
        assert_eq!(out[shape.linearize(&[1, 2])], 4.0); // 4*v[0]
    }

    #[test]
    fn ttm_by_hand() {
        let x = small();
        let u = DenseMatrix::from_fn(4, 2, |i, j| (i + 1) as f64 * if j == 0 { 1.0 } else { -1.0 });
        let (shape, out) = ttm_dense(&x, &u, 2).unwrap();
        assert_eq!(shape.dims(), &[2, 3, 2]);
        // Entry (0,0,·) comes from x[0,0,0]=1 times row 0 of U = (1, -1).
        assert_eq!(out[shape.linearize(&[0, 0, 0])], 1.0);
        assert_eq!(out[shape.linearize(&[0, 0, 1])], -1.0);
        // Entry (1,1,·): x[1,1,2]=3 times row 2 = (3, -3) -> (9, -9).
        assert_eq!(out[shape.linearize(&[1, 1, 0])], 9.0);
        assert_eq!(out[shape.linearize(&[1, 1, 1])], -9.0);
    }

    #[test]
    fn mttkrp_by_hand_third_order() {
        // Single non-zero: result row i gets val * B[j,:] ∘ C[k,:].
        let x =
            CooTensor::<f64>::from_entries(Shape::new(vec![2, 2, 2]), vec![(vec![1, 0, 1], 2.0)])
                .unwrap();
        let a = DenseMatrix::zeros(2, 3);
        let b = DenseMatrix::from_fn(2, 3, |i, j| (i * 3 + j) as f64); // row 0: 0,1,2
        let c = DenseMatrix::from_fn(2, 3, |i, j| (i + j) as f64); // row 1: 1,2,3
        let out = mttkrp_dense(&x, &[a, b, c], 0).unwrap();
        assert_eq!(out.row(0), &[0.0, 0.0, 0.0]);
        assert_eq!(out.row(1), &[0.0, 4.0, 12.0]); // 2 * (0,1,2)∘(1,2,3)
    }

    #[test]
    fn mttkrp_fourth_order() {
        let x = CooTensor::<f64>::from_entries(
            Shape::new(vec![2, 2, 2, 2]),
            vec![(vec![0, 1, 1, 0], 1.0), (vec![0, 0, 0, 0], 1.0)],
        )
        .unwrap();
        let fs: Vec<DenseMatrix<f64>> =
            (0..4).map(|m| DenseMatrix::from_fn(2, 2, |i, j| (m + i + j) as f64 + 1.0)).collect();
        let out = mttkrp_dense(&x, &fs, 1).unwrap();
        // Row 1 from first nnz: 1 * f0[0,:] ∘ f2[1,:] ∘ f3[0,:]
        let expect_r0 = fs[0].get(0, 0) * fs[2].get(1, 0) * fs[3].get(0, 0);
        assert_eq!(out.get(1, 0), expect_r0);
        // Row 0 from second nnz.
        let expect2 = fs[0].get(0, 1) * fs[2].get(0, 1) * fs[3].get(0, 1);
        assert_eq!(out.get(0, 1), expect2);
    }

    #[test]
    fn tew_ts_dense_by_hand() {
        let x = small();
        let y = x.like_pattern(2.0);
        let sum = tew_dense(EwOp::Add, &x, &y).unwrap();
        let shape = x.shape();
        assert_eq!(sum[shape.linearize(&[0, 0, 0])], 3.0);
        assert_eq!(sum[shape.linearize(&[1, 2, 0])], 6.0);
        assert_eq!(sum[shape.linearize(&[0, 0, 1])], 0.0); // structural zero
        let scaled = ts_dense(TsOp::Mul, &x, 10.0).unwrap();
        assert_eq!(scaled[shape.linearize(&[1, 1, 2])], 30.0);
        assert_eq!(scaled[shape.linearize(&[0, 1, 0])], 0.0);
    }

    #[test]
    fn oracles_reject_mismatched_operands() {
        let x = small();
        // TTV: wrong vector length and out-of-range mode.
        let v = DenseVector::from_vec(vec![1.0, 2.0]);
        assert!(matches!(ttv_dense(&x, &v, 2), Err(Error::OperandMismatch { .. })));
        let v4 = DenseVector::from_vec(vec![1.0; 4]);
        assert!(matches!(ttv_dense(&x, &v4, 3), Err(Error::InvalidMode { mode: 3, order: 3 })));
        // TTM: wrong row count and out-of-range mode.
        let u = DenseMatrix::<f64>::zeros(3, 2);
        assert!(matches!(ttm_dense(&x, &u, 2), Err(Error::OperandMismatch { .. })));
        assert!(matches!(ttm_dense(&x, &u, 9), Err(Error::InvalidMode { mode: 9, order: 3 })));
        // MTTKRP: wrong factor count, inconsistent rank, wrong rows.
        let good: Vec<DenseMatrix<f64>> =
            [2, 3, 4].iter().map(|&d| DenseMatrix::zeros(d, 2)).collect();
        assert!(matches!(mttkrp_dense(&x, &good[..2], 0), Err(Error::OperandMismatch { .. })));
        let mut bad_rank = good.clone();
        bad_rank[1] = DenseMatrix::zeros(3, 5);
        assert!(matches!(mttkrp_dense(&x, &bad_rank, 0), Err(Error::OperandMismatch { .. })));
        let mut bad_rows = good.clone();
        bad_rows[2] = DenseMatrix::zeros(9, 2);
        assert!(matches!(mttkrp_dense(&x, &bad_rows, 0), Err(Error::OperandMismatch { .. })));
        assert!(matches!(mttkrp_dense(&x, &good, 7), Err(Error::InvalidMode { .. })));
        // TEW: pattern mismatch and division by a stored zero.
        let z =
            CooTensor::<f64>::from_entries(Shape::new(vec![2, 3, 4]), vec![(vec![0, 0, 1], 5.0)])
                .unwrap();
        assert!(matches!(tew_dense(EwOp::Add, &x, &z), Err(Error::PatternMismatch)));
        let mut y0 = x.like_pattern(1.0);
        y0.vals_mut()[1] = 0.0;
        assert!(matches!(tew_dense(EwOp::Div, &x, &y0), Err(Error::DivisionByZero)));
        // TS: division by a zero scalar.
        assert!(matches!(ts_dense(TsOp::Div, &x, 0.0), Err(Error::DivisionByZero)));
    }

    #[test]
    fn oracle_size_guard_is_typed() {
        // 2^12 per mode over 3 modes = 2^36 dense entries: over the limit.
        let huge = CooTensor::<f32>::new(Shape::new(vec![1 << 12, 1 << 12, 1 << 12]));
        let v = DenseVector::from_vec(vec![0.0_f32; 1 << 12]);
        assert!(matches!(ttv_dense(&huge, &v, 0), Err(Error::OperandMismatch { .. })));
        assert!(matches!(ts_dense(TsOp::Mul, &huge, 2.0), Err(Error::OperandMismatch { .. })));
    }

    #[test]
    fn approx_eq_helper() {
        assert!(dense_approx_eq(&[1.0_f32, 2.0], &[1.0, 2.0 + 1e-7], 1e-5));
        assert!(!dense_approx_eq(&[1.0_f32], &[1.0, 2.0], 1e-5));
        assert!(!dense_approx_eq(&[1.0_f32], &[1.5], 1e-5));
    }
}
