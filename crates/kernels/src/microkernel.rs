//! Runtime-dispatched rank-loop microkernels.
//!
//! Every dense inner loop in TTM and MTTKRP runs over the `R` columns of a
//! factor-matrix row (the paper fixes `R = 16`), and every TTV fiber is a
//! short gather-dot product. Each microkernel exists in two bodies:
//!
//! - a **portable fallback** written as an 8-wide block pass, a 4-wide block
//!   pass over the remainder, and a scalar tail, so the compiler sees
//!   fixed-trip-count inner bodies with no cross-iteration dependences and
//!   emits packed SIMD for them without platform intrinsics;
//! - an **explicit AVX2 path** (`std::arch::x86_64`, 256-bit lanes) selected
//!   at runtime when `is_x86_feature_detected!` reports both `avx2` and
//!   `fma`.
//!
//! # Determinism contract
//!
//! [`mul_assign`], [`add_assign`] and [`axpy`] are *element-wise*: lane `i`
//! only ever combines `a[i]`-with-`b[i]` terms, and the AVX2 `axpy` uses a
//! separate multiply and add (never a fused multiply-add), so each lane
//! rounds exactly like the scalar statement `acc[i] += a * row[i]`. Their
//! results are **bit-identical across dispatch levels**, which is what keeps
//! the suite's 0-ULP conformance cells (e.g. MTTKRP owner-computes vs
//! sequential) intact whichever path runs.
//!
//! [`gather_dot`] is a reduction, so vectorizing it necessarily changes the
//! association order: the AVX2 path keeps 8 (`f32`) or 4 (`f64`) lane
//! partials and combines them in a **fixed pairwise order** plus a scalar
//! tail. The result is a pure function of the entry range and dispatch
//! level — deterministic across thread counts and schedules — but differs
//! from the scalar fallback by bounded rounding, so SIMD-vs-scalar TTV
//! carries its own conformance ULP budget instead of a 0-ULP promise.
//!
//! # Dispatch
//!
//! The level used by the plain entry points is resolved once per process:
//!
//! 1. a programmatic override installed via [`force_simd`] (conformance and
//!    tests), else
//! 2. the `PASTA_SIMD` environment variable — `scalar` forces the portable
//!    fallback, `avx2` / `auto` / unset use the detected level;
//! 3. capped by what the CPU actually supports, so forcing `avx2` on a
//!    machine without it safely degrades to scalar.
//!
//! The `*_at` variants take the level explicitly and are the primitive the
//! property tests use to compare both bodies in one process.

use pasta_core::{Coord, Value};
use std::any::TypeId;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// How far ahead (in entries) the gather loops issue software prefetches.
/// Far enough to cover DRAM latency at one gather per entry, near enough
/// that the prefetched line is still resident when the loop arrives.
const PREFETCH_DIST: usize = 16;

// ---------------------------------------------------------------------------
// Dispatch level
// ---------------------------------------------------------------------------

/// The instruction-set level a microkernel body is compiled for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimdLevel {
    /// The portable unrolled fallback (no platform intrinsics).
    Scalar,
    /// 256-bit AVX2 lanes; FMA used only inside [`gather_dot`].
    Avx2Fma,
}

impl SimdLevel {
    /// Stable lowercase label used in `hostrun` rows and tuning tables.
    pub fn label(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Avx2Fma => "avx2+fma",
        }
    }
}

impl std::fmt::Display for SimdLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

const OVERRIDE_NONE: u8 = 0;
const OVERRIDE_SCALAR: u8 = 1;
const OVERRIDE_AVX2: u8 = 2;

/// Process-global programmatic override (test/conformance hook).
static OVERRIDE: AtomicU8 = AtomicU8::new(OVERRIDE_NONE);

/// What the CPU supports, probed once.
fn hw_level() -> SimdLevel {
    static HW: OnceLock<SimdLevel> = OnceLock::new();
    *HW.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
            {
                return SimdLevel::Avx2Fma;
            }
        }
        SimdLevel::Scalar
    })
}

/// The `PASTA_SIMD`-aware default, resolved once per process.
fn env_level() -> SimdLevel {
    static ENV: OnceLock<SimdLevel> = OnceLock::new();
    *ENV.get_or_init(|| match std::env::var("PASTA_SIMD").as_deref() {
        Ok("scalar") => SimdLevel::Scalar,
        // `avx2` is a request, still capped by detection below.
        Ok("avx2") | Ok("auto") | Ok("") | Err(_) => hw_level(),
        Ok(other) => {
            eprintln!("PASTA_SIMD={other:?} not recognized (scalar|avx2|auto); using auto");
            hw_level()
        }
    })
}

/// The dispatch level the plain microkernel entry points will use *now*:
/// [`force_simd`] override, else `PASTA_SIMD`, else feature detection —
/// always capped by what the CPU supports.
#[inline]
pub fn simd_level() -> SimdLevel {
    match OVERRIDE.load(Ordering::Relaxed) {
        OVERRIDE_SCALAR => SimdLevel::Scalar,
        OVERRIDE_AVX2 => hw_level(),
        _ => env_level(),
    }
}

/// Installs (`Some`) or clears (`None`) a process-global dispatch override,
/// taking precedence over `PASTA_SIMD` and detection. Forcing
/// [`SimdLevel::Avx2Fma`] on hardware without it degrades safely to scalar.
///
/// This is a conformance/test hook: the matrix uses it to run the same cell
/// through both bodies. Element-wise microkernels are bit-identical across
/// levels, so a concurrent flip is benign for them; reductions are only
/// compared under per-cell ULP budgets.
pub fn force_simd(level: Option<SimdLevel>) {
    let code = match level {
        None => OVERRIDE_NONE,
        Some(SimdLevel::Scalar) => OVERRIDE_SCALAR,
        Some(SimdLevel::Avx2Fma) => OVERRIDE_AVX2,
    };
    OVERRIDE.store(code, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Prefetch
// ---------------------------------------------------------------------------

/// Best-effort software prefetch of `data[i]` into all cache levels.
///
/// No-op when out of bounds or off x86_64; never changes results. Used on
/// the index-gather paths (TTV fiber gathers, TTM/MTTKRP factor-row reads)
/// where the hardware stride prefetcher cannot follow the indirection.
#[inline(always)]
pub fn prefetch_read<T>(data: &[T], i: usize) {
    #[cfg(target_arch = "x86_64")]
    if i < data.len() {
        // SAFETY: `i` is in bounds; prefetch reads no memory architecturally.
        unsafe {
            use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            _mm_prefetch::<_MM_HINT_T0>(data.as_ptr().add(i) as *const i8);
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (data, i);
    }
}

// ---------------------------------------------------------------------------
// Type-punning helpers (Value is implemented for f32/f64 only)
// ---------------------------------------------------------------------------

#[inline]
fn cast_mut<V: Value, T: 'static>(s: &mut [V]) -> Option<&mut [T]> {
    if TypeId::of::<V>() == TypeId::of::<T>() {
        // SAFETY: V and T are the same type per the TypeId check.
        Some(unsafe { &mut *(s as *mut [V] as *mut [T]) })
    } else {
        None
    }
}

#[inline]
fn cast_ref<V: Value, T: 'static>(s: &[V]) -> Option<&[T]> {
    if TypeId::of::<V>() == TypeId::of::<T>() {
        // SAFETY: V and T are the same type per the TypeId check.
        Some(unsafe { &*(s as *const [V] as *const [T]) })
    } else {
        None
    }
}

#[inline]
fn cast_val<T: Copy + 'static, V: Copy + 'static>(t: T) -> V {
    debug_assert_eq!(TypeId::of::<T>(), TypeId::of::<V>());
    // SAFETY: same type per the TypeId invariant upheld by all callers.
    unsafe { std::mem::transmute_copy(&t) }
}

// ---------------------------------------------------------------------------
// Public entry points
// ---------------------------------------------------------------------------

/// `acc[i] *= row[i]` — the Khatri-Rao partial-product update.
/// Bit-identical across dispatch levels.
#[inline]
pub fn mul_assign<V: Value>(acc: &mut [V], row: &[V]) {
    mul_assign_at(simd_level(), acc, row);
}

/// [`mul_assign`] with the dispatch level pinned by the caller.
/// An unsupported level degrades safely to the portable fallback.
#[inline]
pub fn mul_assign_at<V: Value>(level: SimdLevel, acc: &mut [V], row: &[V]) {
    debug_assert_eq!(acc.len(), row.len());
    #[cfg(target_arch = "x86_64")]
    if level == SimdLevel::Avx2Fma && hw_level() == SimdLevel::Avx2Fma {
        if let (Some(a), Some(b)) = (cast_mut::<V, f32>(acc), cast_ref::<V, f32>(row)) {
            // SAFETY: avx2+fma verified by hw_level above.
            unsafe { avx2::mul_assign_f32(a, b) };
            return;
        }
        if let (Some(a), Some(b)) = (cast_mut::<V, f64>(acc), cast_ref::<V, f64>(row)) {
            // SAFETY: avx2+fma verified by hw_level above.
            unsafe { avx2::mul_assign_f64(a, b) };
            return;
        }
    }
    let _ = level;
    mul_assign_scalar(acc, row);
}

/// `acc[i] += row[i]` — the accumulator merge update.
/// Bit-identical across dispatch levels.
#[inline]
pub fn add_assign<V: Value>(acc: &mut [V], row: &[V]) {
    add_assign_at(simd_level(), acc, row);
}

/// [`add_assign`] with the dispatch level pinned by the caller.
/// An unsupported level degrades safely to the portable fallback.
#[inline]
pub fn add_assign_at<V: Value>(level: SimdLevel, acc: &mut [V], row: &[V]) {
    debug_assert_eq!(acc.len(), row.len());
    #[cfg(target_arch = "x86_64")]
    if level == SimdLevel::Avx2Fma && hw_level() == SimdLevel::Avx2Fma {
        if let (Some(a), Some(b)) = (cast_mut::<V, f32>(acc), cast_ref::<V, f32>(row)) {
            // SAFETY: avx2+fma verified by hw_level above.
            unsafe { avx2::add_assign_f32(a, b) };
            return;
        }
        if let (Some(a), Some(b)) = (cast_mut::<V, f64>(acc), cast_ref::<V, f64>(row)) {
            // SAFETY: avx2+fma verified by hw_level above.
            unsafe { avx2::add_assign_f64(a, b) };
            return;
        }
    }
    let _ = level;
    add_assign_scalar(acc, row);
}

/// `acc[i] += a · row[i]` — the scaled-row scatter update (TTM inner loop,
/// MTTKRP output update). Bit-identical across dispatch levels: the AVX2
/// body multiplies then adds (two roundings, like the scalar statement)
/// rather than fusing.
#[inline]
pub fn axpy<V: Value>(acc: &mut [V], a: V, row: &[V]) {
    axpy_at(simd_level(), acc, a, row);
}

/// [`axpy`] with the dispatch level pinned by the caller.
/// An unsupported level degrades safely to the portable fallback.
#[inline]
pub fn axpy_at<V: Value>(level: SimdLevel, acc: &mut [V], a: V, row: &[V]) {
    debug_assert_eq!(acc.len(), row.len());
    #[cfg(target_arch = "x86_64")]
    if level == SimdLevel::Avx2Fma && hw_level() == SimdLevel::Avx2Fma {
        if let (Some(d), Some(s)) = (cast_mut::<V, f32>(acc), cast_ref::<V, f32>(row)) {
            // SAFETY: avx2+fma verified by hw_level above.
            unsafe { avx2::axpy_f32(d, cast_val::<V, f32>(a), s) };
            return;
        }
        if let (Some(d), Some(s)) = (cast_mut::<V, f64>(acc), cast_ref::<V, f64>(row)) {
            // SAFETY: avx2+fma verified by hw_level above.
            unsafe { avx2::axpy_f64(d, cast_val::<V, f64>(a), s) };
            return;
        }
    }
    let _ = level;
    axpy_scalar(acc, a, row);
}

/// `Σ_{x ∈ range} vals[x] · v[idx[x]]` — the TTV fiber contraction.
///
/// The scalar body keeps a *single* sequential accumulator (the exact
/// association order the suite's original bit-identity promise was written
/// against); the AVX2 body uses hardware gathers with a fixed-width lane
/// reduction (see the module docs for the determinism contract). Both issue
/// software prefetches `PREFETCH_DIST` entries ahead on the gathered
/// vector, which never changes the value computed.
#[inline]
pub fn gather_dot<V: Value>(
    vals: &[V],
    idx: &[Coord],
    v: &[V],
    range: std::ops::Range<usize>,
) -> V {
    gather_dot_at(simd_level(), vals, idx, v, range)
}

/// [`gather_dot`] with the dispatch level pinned by the caller.
/// An unsupported level degrades safely to the portable fallback, as do
/// vectors too long for 32-bit gather offsets.
#[inline]
pub fn gather_dot_at<V: Value>(
    level: SimdLevel,
    vals: &[V],
    idx: &[Coord],
    v: &[V],
    range: std::ops::Range<usize>,
) -> V {
    #[cfg(target_arch = "x86_64")]
    if level == SimdLevel::Avx2Fma
        && hw_level() == SimdLevel::Avx2Fma
        && v.len() <= i32::MAX as usize
    {
        if let (Some(a), Some(b)) = (cast_ref::<V, f32>(vals), cast_ref::<V, f32>(v)) {
            // SAFETY: avx2+fma verified by hw_level above; gather offsets
            // fit in i32 per the length check above.
            return cast_val::<f32, V>(unsafe { avx2::gather_dot_f32(a, idx, b, range) });
        }
        if let (Some(a), Some(b)) = (cast_ref::<V, f64>(vals), cast_ref::<V, f64>(v)) {
            // SAFETY: as above.
            return cast_val::<f64, V>(unsafe { avx2::gather_dot_f64(a, idx, b, range) });
        }
    }
    let _ = level;
    gather_dot_scalar(vals, idx, v, range)
}

// ---------------------------------------------------------------------------
// Portable fallback bodies (the original unrolled microkernels)
// ---------------------------------------------------------------------------

#[inline]
fn mul_assign_scalar<V: Value>(acc: &mut [V], row: &[V]) {
    let mut a = acc.chunks_exact_mut(8);
    let mut b = row.chunks_exact(8);
    for (aa, bb) in (&mut a).zip(&mut b) {
        for i in 0..8 {
            aa[i] *= bb[i];
        }
    }
    let mut a4 = a.into_remainder().chunks_exact_mut(4);
    let mut b4 = b.remainder().chunks_exact(4);
    for (aa, bb) in (&mut a4).zip(&mut b4) {
        for i in 0..4 {
            aa[i] *= bb[i];
        }
    }
    for (aa, &bb) in a4.into_remainder().iter_mut().zip(b4.remainder()) {
        *aa *= bb;
    }
}

#[inline]
fn add_assign_scalar<V: Value>(acc: &mut [V], row: &[V]) {
    let mut a = acc.chunks_exact_mut(8);
    let mut b = row.chunks_exact(8);
    for (aa, bb) in (&mut a).zip(&mut b) {
        for i in 0..8 {
            aa[i] += bb[i];
        }
    }
    let mut a4 = a.into_remainder().chunks_exact_mut(4);
    let mut b4 = b.remainder().chunks_exact(4);
    for (aa, bb) in (&mut a4).zip(&mut b4) {
        for i in 0..4 {
            aa[i] += bb[i];
        }
    }
    for (aa, &bb) in a4.into_remainder().iter_mut().zip(b4.remainder()) {
        *aa += bb;
    }
}

#[inline]
fn axpy_scalar<V: Value>(acc: &mut [V], a: V, row: &[V]) {
    let mut d = acc.chunks_exact_mut(8);
    let mut s = row.chunks_exact(8);
    for (dd, ss) in (&mut d).zip(&mut s) {
        for i in 0..8 {
            dd[i] += a * ss[i];
        }
    }
    let mut d4 = d.into_remainder().chunks_exact_mut(4);
    let mut s4 = s.remainder().chunks_exact(4);
    for (dd, ss) in (&mut d4).zip(&mut s4) {
        for i in 0..4 {
            dd[i] += a * ss[i];
        }
    }
    for (dd, &ss) in d4.into_remainder().iter_mut().zip(s4.remainder()) {
        *dd += a * ss;
    }
}

#[inline]
fn gather_dot_scalar<V: Value>(
    vals: &[V],
    idx: &[Coord],
    v: &[V],
    range: std::ops::Range<usize>,
) -> V {
    let end = range.end;
    let mut acc = V::ZERO;
    for x in range {
        let ahead = x + PREFETCH_DIST;
        if ahead < end {
            prefetch_read(v, idx[ahead] as usize);
        }
        acc += vals[x] * v[idx[x] as usize];
    }
    acc
}

// ---------------------------------------------------------------------------
// AVX2 bodies
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::PREFETCH_DIST;
    use pasta_core::Coord;
    use std::arch::x86_64::*;

    /// # Safety
    /// Caller must verify `avx2` is available.
    #[target_feature(enable = "avx2")]
    pub unsafe fn mul_assign_f32(acc: &mut [f32], row: &[f32]) {
        let n = acc.len().min(row.len());
        let (ap, rp) = (acc.as_mut_ptr(), row.as_ptr());
        let mut i = 0;
        while i + 8 <= n {
            let a = _mm256_loadu_ps(ap.add(i));
            let b = _mm256_loadu_ps(rp.add(i));
            _mm256_storeu_ps(ap.add(i), _mm256_mul_ps(a, b));
            i += 8;
        }
        while i < n {
            *ap.add(i) *= *rp.add(i);
            i += 1;
        }
    }

    /// # Safety
    /// Caller must verify `avx2` is available.
    #[target_feature(enable = "avx2")]
    pub unsafe fn mul_assign_f64(acc: &mut [f64], row: &[f64]) {
        let n = acc.len().min(row.len());
        let (ap, rp) = (acc.as_mut_ptr(), row.as_ptr());
        let mut i = 0;
        while i + 4 <= n {
            let a = _mm256_loadu_pd(ap.add(i));
            let b = _mm256_loadu_pd(rp.add(i));
            _mm256_storeu_pd(ap.add(i), _mm256_mul_pd(a, b));
            i += 4;
        }
        while i < n {
            *ap.add(i) *= *rp.add(i);
            i += 1;
        }
    }

    /// # Safety
    /// Caller must verify `avx2` is available.
    #[target_feature(enable = "avx2")]
    pub unsafe fn add_assign_f32(acc: &mut [f32], row: &[f32]) {
        let n = acc.len().min(row.len());
        let (ap, rp) = (acc.as_mut_ptr(), row.as_ptr());
        let mut i = 0;
        while i + 8 <= n {
            let a = _mm256_loadu_ps(ap.add(i));
            let b = _mm256_loadu_ps(rp.add(i));
            _mm256_storeu_ps(ap.add(i), _mm256_add_ps(a, b));
            i += 8;
        }
        while i < n {
            *ap.add(i) += *rp.add(i);
            i += 1;
        }
    }

    /// # Safety
    /// Caller must verify `avx2` is available.
    #[target_feature(enable = "avx2")]
    pub unsafe fn add_assign_f64(acc: &mut [f64], row: &[f64]) {
        let n = acc.len().min(row.len());
        let (ap, rp) = (acc.as_mut_ptr(), row.as_ptr());
        let mut i = 0;
        while i + 4 <= n {
            let a = _mm256_loadu_pd(ap.add(i));
            let b = _mm256_loadu_pd(rp.add(i));
            _mm256_storeu_pd(ap.add(i), _mm256_add_pd(a, b));
            i += 4;
        }
        while i < n {
            *ap.add(i) += *rp.add(i);
            i += 1;
        }
    }

    /// Multiply-then-add on purpose (two roundings per lane, exactly like
    /// the scalar statement) — FMA here would break bit-identity.
    ///
    /// # Safety
    /// Caller must verify `avx2` is available.
    #[target_feature(enable = "avx2")]
    pub unsafe fn axpy_f32(acc: &mut [f32], a: f32, row: &[f32]) {
        let n = acc.len().min(row.len());
        let (dp, sp) = (acc.as_mut_ptr(), row.as_ptr());
        let av = _mm256_set1_ps(a);
        let mut i = 0;
        while i + 8 <= n {
            let d = _mm256_loadu_ps(dp.add(i));
            let s = _mm256_loadu_ps(sp.add(i));
            _mm256_storeu_ps(dp.add(i), _mm256_add_ps(d, _mm256_mul_ps(av, s)));
            i += 8;
        }
        while i < n {
            *dp.add(i) += a * *sp.add(i);
            i += 1;
        }
    }

    /// Multiply-then-add on purpose — see [`axpy_f32`].
    ///
    /// # Safety
    /// Caller must verify `avx2` is available.
    #[target_feature(enable = "avx2")]
    pub unsafe fn axpy_f64(acc: &mut [f64], a: f64, row: &[f64]) {
        let n = acc.len().min(row.len());
        let (dp, sp) = (acc.as_mut_ptr(), row.as_ptr());
        let av = _mm256_set1_pd(a);
        let mut i = 0;
        while i + 4 <= n {
            let d = _mm256_loadu_pd(dp.add(i));
            let s = _mm256_loadu_pd(sp.add(i));
            _mm256_storeu_pd(dp.add(i), _mm256_add_pd(d, _mm256_mul_pd(av, s)));
            i += 4;
        }
        while i < n {
            *dp.add(i) += a * *sp.add(i);
            i += 1;
        }
    }

    /// Eight lane partials via hardware gather + FMA, reduced in a fixed
    /// pairwise order, then a sequential scalar tail. Deterministic for a
    /// given range; independent of thread count and schedule.
    ///
    /// # Safety
    /// Caller must verify `avx2` and `fma` are available and that
    /// `v.len() <= i32::MAX` (gather offsets are signed 32-bit).
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn gather_dot_f32(
        vals: &[f32],
        idx: &[Coord],
        v: &[f32],
        range: std::ops::Range<usize>,
    ) -> f32 {
        let (start, end) = (range.start, range.end);
        let mut acc = _mm256_setzero_ps();
        let mut x = start;
        while x + 8 <= end {
            let ahead = x + PREFETCH_DIST;
            if ahead < end {
                _mm_prefetch::<_MM_HINT_T0>(
                    v.as_ptr().add(*idx.get_unchecked(ahead) as usize) as *const i8
                );
            }
            let off = _mm256_loadu_si256(idx.as_ptr().add(x) as *const __m256i);
            let g = _mm256_i32gather_ps::<4>(v.as_ptr(), off);
            let a = _mm256_loadu_ps(vals.as_ptr().add(x));
            acc = _mm256_fmadd_ps(a, g, acc);
            x += 8;
        }
        let mut lanes = [0.0f32; 8];
        _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
        let mut sum = ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3]))
            + ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]));
        while x < end {
            sum += *vals.get_unchecked(x) * *v.get_unchecked(*idx.get_unchecked(x) as usize);
            x += 1;
        }
        sum
    }

    /// Four lane partials; otherwise as [`gather_dot_f32`].
    ///
    /// # Safety
    /// Caller must verify `avx2` and `fma` are available and that
    /// `v.len() <= i32::MAX`.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn gather_dot_f64(
        vals: &[f64],
        idx: &[Coord],
        v: &[f64],
        range: std::ops::Range<usize>,
    ) -> f64 {
        let (start, end) = (range.start, range.end);
        let mut acc = _mm256_setzero_pd();
        let mut x = start;
        while x + 4 <= end {
            let ahead = x + PREFETCH_DIST;
            if ahead < end {
                _mm_prefetch::<_MM_HINT_T0>(
                    v.as_ptr().add(*idx.get_unchecked(ahead) as usize) as *const i8
                );
            }
            let off = _mm_loadu_si128(idx.as_ptr().add(x) as *const __m128i);
            let g = _mm256_i32gather_pd::<8>(v.as_ptr(), off);
            let a = _mm256_loadu_pd(vals.as_ptr().add(x));
            acc = _mm256_fmadd_pd(a, g, acc);
            x += 4;
        }
        let mut lanes = [0.0f64; 4];
        _mm256_storeu_pd(lanes.as_mut_ptr(), acc);
        let mut sum = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
        while x < end {
            sum += *vals.get_unchecked(x) * *v.get_unchecked(*idx.get_unchecked(x) as usize);
            x += 1;
        }
        sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vecs(n: usize) -> (Vec<f64>, Vec<f64>) {
        let a: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.11).cos()).collect();
        (a, b)
    }

    fn vecs32(n: usize) -> (Vec<f32>, Vec<f32>) {
        let (a, b) = vecs(n);
        (a.iter().map(|&x| x as f32).collect(), b.iter().map(|&x| x as f32).collect())
    }

    // Lengths straddling both block widths and the scalar tail.
    const LENS: [usize; 9] = [0, 1, 3, 4, 7, 8, 12, 16, 19];

    const LEVELS: [SimdLevel; 2] = [SimdLevel::Scalar, SimdLevel::Avx2Fma];

    #[test]
    fn mul_assign_matches_scalar_all_tails() {
        for &n in &LENS {
            let (mut a, b) = vecs(n);
            let want: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x * y).collect();
            mul_assign(&mut a, &b);
            assert_eq!(a, want, "n={n}");
        }
    }

    #[test]
    fn add_assign_matches_scalar_all_tails() {
        for &n in &LENS {
            let (mut a, b) = vecs(n);
            let want: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
            add_assign(&mut a, &b);
            assert_eq!(a, want, "n={n}");
        }
    }

    #[test]
    fn axpy_matches_scalar_all_tails() {
        for &n in &LENS {
            let (mut a, b) = vecs(n);
            let want: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x + 2.5 * y).collect();
            axpy(&mut a, 2.5, &b);
            assert_eq!(a, want, "n={n}");
        }
    }

    #[test]
    fn gather_dot_matches_scalar() {
        let vals: Vec<f32> = (0..50).map(|i| i as f32 * 0.5).collect();
        let idx: Vec<u32> = (0..50).map(|i| (i * 7) % 10).collect();
        let v: Vec<f32> = (0..10).map(|i| 1.0 / (i + 1) as f32).collect();
        let want: f32 = (5..37).map(|x| vals[x] * v[idx[x] as usize]).sum();
        assert_eq!(gather_dot_at(SimdLevel::Scalar, &vals, &idx, &v, 5..37), want);
    }

    #[test]
    fn elementwise_bit_identical_across_levels_f32() {
        for &n in &LENS {
            let (a0, b) = vecs32(n);
            for level in LEVELS {
                let mut m = a0.clone();
                mul_assign_at(level, &mut m, &b);
                let mut s = a0.clone();
                mul_assign_at(SimdLevel::Scalar, &mut s, &b);
                assert_eq!(m, s, "mul n={n} level={level}");

                let mut m = a0.clone();
                add_assign_at(level, &mut m, &b);
                let mut s = a0.clone();
                add_assign_at(SimdLevel::Scalar, &mut s, &b);
                assert_eq!(m, s, "add n={n} level={level}");

                let mut m = a0.clone();
                axpy_at(level, &mut m, -1.75f32, &b);
                let mut s = a0.clone();
                axpy_at(SimdLevel::Scalar, &mut s, -1.75f32, &b);
                assert_eq!(m, s, "axpy n={n} level={level}");
            }
        }
    }

    #[test]
    fn elementwise_bit_identical_across_levels_f64() {
        for &n in &LENS {
            let (a0, b) = vecs(n);
            for level in LEVELS {
                let mut m = a0.clone();
                axpy_at(level, &mut m, 3.125f64, &b);
                let mut s = a0.clone();
                axpy_at(SimdLevel::Scalar, &mut s, 3.125f64, &b);
                assert_eq!(m, s, "axpy n={n} level={level}");
            }
        }
    }

    #[test]
    fn gather_dot_levels_agree_within_ulps() {
        // Positive terms: no cancellation, so the reassociation error stays
        // small relative to the result and a tight ULP budget is meaningful.
        let n = 200;
        let vals: Vec<f32> = (0..n).map(|i| (i as f32 * 0.61).sin() + 1.5).collect();
        let idx: Vec<u32> = (0..n).map(|i| ((i * 13) % 37) as u32).collect();
        let v: Vec<f32> = (0..37).map(|i| (i as f32 * 0.23).cos() + 1.25).collect();
        for range in [0..0, 0..1, 0..7, 0..8, 3..19, 0..n, 11..n - 5] {
            let s = gather_dot_at(SimdLevel::Scalar, &vals, &idx, &v, range.clone());
            let x = gather_dot_at(SimdLevel::Avx2Fma, &vals, &idx, &v, range.clone());
            assert!(s.ulp_distance(x) <= 64, "range={range:?} scalar={s} simd={x}");
        }
    }

    #[test]
    fn gather_dot_levels_track_f64_reference_with_cancellation() {
        // Mixed signs cancel, so bound the *absolute* error by the
        // condition of the sum (n·ε·Σ|terms|) instead of result ULPs.
        let n = 200;
        let vals: Vec<f32> = (0..n).map(|i| (i as f32 * 0.61).sin() * 3.0).collect();
        let idx: Vec<u32> = (0..n).map(|i| ((i * 13) % 37) as u32).collect();
        let v: Vec<f32> = (0..37).map(|i| (i as f32 * 0.23).cos()).collect();
        for range in [0..n, 11..n - 5, 3..97] {
            let ref64: f64 =
                range.clone().map(|x| vals[x] as f64 * v[idx[x] as usize] as f64).sum();
            let sum_abs: f64 =
                range.clone().map(|x| (vals[x] as f64 * v[idx[x] as usize] as f64).abs()).sum();
            let tol = 4.0 * range.len() as f64 * f32::EPSILON as f64 * sum_abs;
            for level in LEVELS {
                let got = gather_dot_at(level, &vals, &idx, &v, range.clone()) as f64;
                assert!(
                    (got - ref64).abs() <= tol,
                    "range={range:?} level={level} got={got} ref={ref64}"
                );
            }
        }
    }

    #[test]
    fn force_simd_round_trips() {
        // Element-wise kernels are bit-identical across levels, so flipping
        // the global override here cannot perturb concurrently running tests.
        force_simd(Some(SimdLevel::Scalar));
        assert_eq!(simd_level(), SimdLevel::Scalar);
        force_simd(Some(SimdLevel::Avx2Fma));
        assert!(simd_level() == hw_level());
        force_simd(None);
        assert_eq!(simd_level(), env_level());
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(SimdLevel::Scalar.label(), "scalar");
        assert_eq!(SimdLevel::Avx2Fma.to_string(), "avx2+fma");
    }

    #[test]
    fn prefetch_is_safe_everywhere() {
        let v = [1.0f32; 4];
        prefetch_read(&v, 0);
        prefetch_read(&v, 3);
        prefetch_read(&v, 4); // out of bounds: no-op
        prefetch_read::<f32>(&[], 0);
    }
}
