//! Unrolled rank-loop microkernels.
//!
//! Every dense inner loop in TTM and MTTKRP runs over the `R` columns of a
//! factor-matrix row (the paper fixes `R = 16`). The loops here are written
//! as an 8-wide block pass, a 4-wide block pass over the remainder, and a
//! scalar tail, so the compiler sees fixed-trip-count inner bodies with no
//! cross-iteration dependences and emits packed SIMD for them — without any
//! platform intrinsics. `chunks_exact` encodes the block bounds in the
//! type, eliminating bounds checks inside the unrolled bodies.
//!
//! All kernels preserve the element order of the plain scalar loop: lane
//! `i` only ever combines `a[i]`-with-`b[i]` terms, so results are
//! bit-identical to the naive loop ([`gather_dot`] keeps a single running
//! accumulator for the same reason).

use pasta_core::{Coord, Value};

/// `acc[i] *= row[i]` — the Khatri-Rao partial-product update.
#[inline]
pub fn mul_assign<V: Value>(acc: &mut [V], row: &[V]) {
    debug_assert_eq!(acc.len(), row.len());
    let mut a = acc.chunks_exact_mut(8);
    let mut b = row.chunks_exact(8);
    for (aa, bb) in (&mut a).zip(&mut b) {
        for i in 0..8 {
            aa[i] *= bb[i];
        }
    }
    let mut a4 = a.into_remainder().chunks_exact_mut(4);
    let mut b4 = b.remainder().chunks_exact(4);
    for (aa, bb) in (&mut a4).zip(&mut b4) {
        for i in 0..4 {
            aa[i] *= bb[i];
        }
    }
    for (aa, &bb) in a4.into_remainder().iter_mut().zip(b4.remainder()) {
        *aa *= bb;
    }
}

/// `acc[i] += row[i]` — the accumulator merge update.
#[inline]
pub fn add_assign<V: Value>(acc: &mut [V], row: &[V]) {
    debug_assert_eq!(acc.len(), row.len());
    let mut a = acc.chunks_exact_mut(8);
    let mut b = row.chunks_exact(8);
    for (aa, bb) in (&mut a).zip(&mut b) {
        for i in 0..8 {
            aa[i] += bb[i];
        }
    }
    let mut a4 = a.into_remainder().chunks_exact_mut(4);
    let mut b4 = b.remainder().chunks_exact(4);
    for (aa, bb) in (&mut a4).zip(&mut b4) {
        for i in 0..4 {
            aa[i] += bb[i];
        }
    }
    for (aa, &bb) in a4.into_remainder().iter_mut().zip(b4.remainder()) {
        *aa += bb;
    }
}

/// `acc[i] += a · row[i]` — the scaled-row scatter update (TTM inner loop,
/// MTTKRP output update).
#[inline]
pub fn axpy<V: Value>(acc: &mut [V], a: V, row: &[V]) {
    debug_assert_eq!(acc.len(), row.len());
    let mut d = acc.chunks_exact_mut(8);
    let mut s = row.chunks_exact(8);
    for (dd, ss) in (&mut d).zip(&mut s) {
        for i in 0..8 {
            dd[i] += a * ss[i];
        }
    }
    let mut d4 = d.into_remainder().chunks_exact_mut(4);
    let mut s4 = s.remainder().chunks_exact(4);
    for (dd, ss) in (&mut d4).zip(&mut s4) {
        for i in 0..4 {
            dd[i] += a * ss[i];
        }
    }
    for (dd, &ss) in d4.into_remainder().iter_mut().zip(s4.remainder()) {
        *dd += a * ss;
    }
}

/// `Σ_{x ∈ range} vals[x] · v[idx[x]]` — the TTV fiber contraction.
///
/// Kept as a *single* sequential accumulator (no lane-split partial sums):
/// the TTV parallel path promises bit-identical results to the sequential
/// path, which requires the exact scalar association order. The gather
/// `v[idx[x]]` dominates this loop's cost anyway, so multi-accumulator
/// unrolling buys little here.
#[inline]
pub fn gather_dot<V: Value>(
    vals: &[V],
    idx: &[Coord],
    v: &[V],
    range: std::ops::Range<usize>,
) -> V {
    let mut acc = V::ZERO;
    for x in range {
        acc += vals[x] * v[idx[x] as usize];
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vecs(n: usize) -> (Vec<f64>, Vec<f64>) {
        let a: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.11).cos()).collect();
        (a, b)
    }

    // Lengths straddling both block widths and the scalar tail.
    const LENS: [usize; 9] = [0, 1, 3, 4, 7, 8, 12, 16, 19];

    #[test]
    fn mul_assign_matches_scalar_all_tails() {
        for &n in &LENS {
            let (mut a, b) = vecs(n);
            let want: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x * y).collect();
            mul_assign(&mut a, &b);
            assert_eq!(a, want, "n={n}");
        }
    }

    #[test]
    fn add_assign_matches_scalar_all_tails() {
        for &n in &LENS {
            let (mut a, b) = vecs(n);
            let want: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
            add_assign(&mut a, &b);
            assert_eq!(a, want, "n={n}");
        }
    }

    #[test]
    fn axpy_matches_scalar_all_tails() {
        for &n in &LENS {
            let (mut a, b) = vecs(n);
            let want: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x + 2.5 * y).collect();
            axpy(&mut a, 2.5, &b);
            assert_eq!(a, want, "n={n}");
        }
    }

    #[test]
    fn gather_dot_matches_scalar() {
        let vals: Vec<f32> = (0..50).map(|i| i as f32 * 0.5).collect();
        let idx: Vec<u32> = (0..50).map(|i| (i * 7) % 10).collect();
        let v: Vec<f32> = (0..10).map(|i| 1.0 / (i + 1) as f32).collect();
        let want: f32 = (5..37).map(|x| vals[x] * v[idx[x] as usize]).sum();
        assert_eq!(gather_dot(&vals, &idx, &v, 5..37), want);
    }
}
