//! F-COO kernels: non-zero-balanced TTV by segmented reduction.
//!
//! COO-TTV parallelizes over fibers, so one long fiber serializes on one
//! worker (the load-imbalance problem the paper flags for COO-TTV and
//! COO-TTM). F-COO instead splits *non-zeros* evenly: each worker reduces
//! its chunk with the fiber-start flags, and fibers straddling chunk
//! boundaries are patched up with per-boundary carries — the CPU analog of
//! F-COO's GPU segmented scan.

use crate::pipeline::Ctx;
use pasta_core::{CooTensor, Coord, DenseVector, Error, FCooTensor, Result, Value};
use pasta_par::parallel_reduce;

/// F-COO TTV: `Y = X ×_mode v` with non-zero-balanced parallelism.
///
/// # Errors
///
/// Returns an error for a mismatched vector length.
///
/// # Examples
///
/// ```
/// use pasta_core::{CooTensor, DenseVector, FCooTensor, Shape};
/// use pasta_kernels::{fcoo::ttv_fcoo, Ctx};
///
/// # fn main() -> Result<(), pasta_core::Error> {
/// let coo = CooTensor::from_entries(
///     Shape::new(vec![2, 2, 3]),
///     vec![(vec![0, 1, 0], 2.0_f32), (vec![0, 1, 2], 3.0)],
/// )?;
/// let fcoo = FCooTensor::from_coo(&coo, 2)?;
/// let v = DenseVector::from_vec(vec![1.0, 10.0, 100.0]);
/// let y = ttv_fcoo(&fcoo, &v, &Ctx::sequential())?;
/// assert_eq!(y.get(&[0, 1]), Some(302.0));
/// # Ok(())
/// # }
/// ```
pub fn ttv_fcoo<V: Value>(
    x: &FCooTensor<V>,
    v: &DenseVector<V>,
    ctx: &Ctx,
) -> Result<CooTensor<V>> {
    let mode = x.mode();
    if v.len() != x.shape().dim(mode) as usize {
        return Err(Error::OperandMismatch {
            what: format!("vector length {} vs mode dim {}", v.len(), x.shape().dim(mode)),
        });
    }
    let mf = x.num_fibers();
    let out_shape = x.shape().remove_mode(mode);
    let mut inds: Vec<Vec<Coord>> = vec![Vec::with_capacity(mf); out_shape.order()];
    for f in 0..mf {
        for (m, col) in inds.iter_mut().enumerate() {
            col.push(x.fiber_coords(f)[m]);
        }
    }

    // Each chunk produces (first fiber id seen, partial sums per fiber in
    // the chunk). A chunk's first segment may continue the previous chunk's
    // last fiber; the reduce step merges those carries.
    #[derive(Clone)]
    struct Partial<V> {
        /// Fiber partial sums, in order: (fiber id, sum). Empty for empty
        /// ranges.
        sums: Vec<(usize, V)>,
    }

    let flags = x.start_flags();
    let vals = x.vals();
    let pinds = x.product_inds();
    let vv = v.as_slice();

    let merged = parallel_reduce(
        x.nnz(),
        ctx.threads,
        || Partial { sums: Vec::new() },
        |mut acc, range| {
            let start = range.start;
            // Fiber id of entry `start` = starts in [0..=start] minus one
            // (entry 0 always carries a start flag).
            let mut fid = flags[..=start].iter().filter(|&&b| b).count() - 1;
            for i in range {
                if i > start && flags[i] {
                    fid += 1;
                }
                let contrib = vals[i] * vv[pinds[i] as usize];
                match acc.sums.last_mut() {
                    Some((last, sum)) if *last == fid => *sum += contrib,
                    _ => acc.sums.push((fid, contrib)),
                }
            }
            acc
        },
        // Chunks arrive in index order; a fiber straddling a boundary shows
        // up as the same fiber id at the tail of one partial and the head of
        // the next — merge those carries.
        |mut a, b| {
            for (fid, sum) in b.sums {
                match a.sums.last_mut() {
                    Some((last, s)) if *last == fid => *s += sum,
                    _ => a.sums.push((fid, sum)),
                }
            }
            a
        },
    );

    let mut out_vals = vec![V::ZERO; mf];
    for (fid, sum) in merged.sums {
        out_vals[fid] += sum;
    }
    let mut out = CooTensor::from_parts(out_shape, inds, out_vals)?;
    out.assume_sorted_by((0..x.shape().order() - 1).collect());
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense_ref::{dense_approx_eq, ttv_dense};
    use pasta_core::{seeded_vector, Shape};

    fn sample() -> CooTensor<f64> {
        CooTensor::from_entries(
            Shape::new(vec![4, 5, 6]),
            vec![
                (vec![0, 0, 0], 1.0),
                (vec![0, 0, 5], 2.0),
                (vec![1, 2, 3], 3.0),
                (vec![3, 4, 1], 4.0),
                (vec![3, 4, 2], 5.0),
                (vec![2, 1, 0], -1.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn matches_dense_every_mode() {
        let x = sample();
        for mode in 0..3 {
            let f = FCooTensor::from_coo(&x, mode).unwrap();
            let v = seeded_vector::<f64>(x.shape().dim(mode) as usize, 3);
            let got = ttv_fcoo(&f, &v, &Ctx::sequential()).unwrap();
            let (shape, want) = ttv_dense(&x, &v, mode).unwrap();
            assert_eq!(got.shape(), &shape);
            assert!(dense_approx_eq(&got.to_dense(1 << 12), &want, 1e-10), "mode {mode}");
        }
    }

    #[test]
    fn parallel_chunks_with_straddling_fibers() {
        // One giant fiber plus many tiny ones: chunk boundaries cut through
        // the giant fiber, exercising the carry merge.
        let mut entries: Vec<(Vec<u32>, f64)> = Vec::new();
        for k in 0..500u32 {
            entries.push((vec![0, 0, k], (k as f64 * 0.01).sin()));
        }
        for f in 1..50u32 {
            entries.push((vec![f % 40, f, f % 500], f as f64));
        }
        let mut x = CooTensor::from_entries(Shape::new(vec![40, 50, 500]), entries).unwrap();
        x.dedup_sum();
        let fc = FCooTensor::from_coo(&x, 2).unwrap();
        let v = seeded_vector::<f64>(500, 9);
        let seq = ttv_fcoo(&fc, &v, &Ctx::sequential()).unwrap();
        for threads in [2usize, 3, 8] {
            let par = ttv_fcoo(&fc, &v, &Ctx::new(threads, pasta_par::Schedule::Static)).unwrap();
            assert_eq!(par.nnz(), seq.nnz());
            for (a, b) in par.vals().iter().zip(seq.vals()) {
                assert!(a.approx_eq(*b, 1e-10), "{threads} threads: {a} vs {b}");
            }
        }
    }

    #[test]
    fn agrees_with_coo_ttv() {
        let x = sample();
        let v = seeded_vector::<f64>(6, 5);
        let via_coo = crate::ttv::ttv_coo(&x, &v, 2, &Ctx::sequential()).unwrap();
        let fc = FCooTensor::from_coo(&x, 2).unwrap();
        let via_fcoo = ttv_fcoo(&fc, &v, &Ctx::sequential()).unwrap();
        assert_eq!(via_coo.nnz(), via_fcoo.nnz());
        let mut a = via_coo;
        a.sort();
        let mut b = via_fcoo;
        b.sort();
        for (x1, x2) in a.vals().iter().zip(b.vals()) {
            assert!(x1.approx_eq(*x2, 1e-12));
        }
    }

    #[test]
    fn vector_length_checked() {
        let x = sample();
        let fc = FCooTensor::from_coo(&x, 0).unwrap();
        let bad = seeded_vector::<f64>(2, 1);
        assert!(ttv_fcoo(&fc, &bad, &Ctx::sequential()).is_err());
    }
}
