//! TS — tensor-scalar operations (Section II-B).
//!
//! `Y = X op s` applied to the non-zero values only, for
//! `op ∈ {+, −, ×, ÷}`. The output shares the input's pattern, so the kernel
//! is a pure streaming pass over the value array: 1 flop per 8 bytes
//! (read + write), the highest-bandwidth kernel in the suite.

use crate::pipeline::{Ctx, TsOp};
use pasta_core::{
    CooTensor, CsfTensor, Error, FCooTensor, FormatAccess, GHiCooTensor, HiCooTensor, Result,
    SHiCooTensor, SemiCooTensor, Value,
};
use pasta_par::{parallel_for, SharedSlice};

/// The tensor-scalar value loop shared by the COO and HiCOO kernels.
fn ts_vals<V: Value>(op: TsOp, x: &[V], s: V, out: &mut [V], ctx: &Ctx) -> Result<()> {
    debug_assert_eq!(x.len(), out.len());
    if op == TsOp::Div && s == V::ZERO {
        return Err(Error::DivisionByZero);
    }
    let shared = SharedSlice::new(out);
    parallel_for(x.len(), ctx.threads, ctx.schedule, |range| {
        for i in range {
            // SAFETY: parallel_for ranges partition the index space.
            unsafe { shared.write(i, op.apply(x[i], s)) };
        }
    });
    Ok(())
}

/// The bare TS value loop on pre-allocated buffers — the portion the
/// paper's methodology times.
///
/// # Errors
///
/// Returns [`Error::DivisionByZero`] for `Div` with `s == 0`, and
/// [`Error::OperandMismatch`] for a length mismatch.
pub fn ts_values_into<V: Value>(op: TsOp, x: &[V], s: V, out: &mut [V], ctx: &Ctx) -> Result<()> {
    if x.len() != out.len() {
        return Err(Error::OperandMismatch {
            what: format!("value arrays of lengths {} and {}", x.len(), out.len()),
        });
    }
    ts_vals(op, x, s, out, ctx)
}

/// TS over any format: `Y = X op s` applied to the stored values.
///
/// The one tensor-scalar kernel, written once against [`FormatAccess`]: the
/// output reuses `x`'s structure verbatim and the value loop streams from
/// `x`'s stored values into the output's. Semi-sparse formats transform the
/// explicit zeros stored inside dense fibers like any other stored value.
///
/// # Errors
///
/// Returns [`Error::DivisionByZero`] for `Div` with `s == 0`.
pub fn ts_any<V: Value, T: FormatAccess<V> + Clone>(op: TsOp, x: &T, s: V, ctx: &Ctx) -> Result<T> {
    let mut y = x.clone();
    ts_vals(op, x.stored_vals(), s, y.stored_vals_mut(), ctx)?;
    Ok(y)
}

/// COO-TS: `Y = X op s` over the non-zeros.
///
/// # Errors
///
/// Returns [`Error::DivisionByZero`] for `Div` with `s == 0`.
///
/// # Examples
///
/// ```
/// use pasta_core::{CooTensor, Shape};
/// use pasta_kernels::{ts_coo, Ctx, TsOp};
///
/// # fn main() -> Result<(), pasta_core::Error> {
/// let x = CooTensor::from_entries(Shape::new(vec![2, 2]), vec![(vec![0, 1], 2.0_f32)])?;
/// let y = ts_coo(TsOp::Mul, &x, 3.0, &Ctx::sequential())?;
/// assert_eq!(y.get(&[0, 1]), Some(6.0));
/// # Ok(())
/// # }
/// ```
pub fn ts_coo<V: Value>(op: TsOp, x: &CooTensor<V>, s: V, ctx: &Ctx) -> Result<CooTensor<V>> {
    ts_any(op, x, s, ctx)
}

/// HiCOO-TS: identical value computation on the HiCOO value array —
/// [`ts_any`].
///
/// # Errors
///
/// Returns [`Error::DivisionByZero`] for `Div` with `s == 0`.
pub fn ts_hicoo<V: Value>(op: TsOp, x: &HiCooTensor<V>, s: V, ctx: &Ctx) -> Result<HiCooTensor<V>> {
    ts_any(op, x, s, ctx)
}

/// sCOO-TS: the value loop runs over the dense per-fiber value arrays;
/// stored zeros inside fibers are transformed like any other stored value —
/// [`ts_any`].
///
/// # Errors
///
/// Returns [`Error::DivisionByZero`] for `Div` with `s == 0`.
pub fn ts_scoo<V: Value>(
    op: TsOp,
    x: &SemiCooTensor<V>,
    s: V,
    ctx: &Ctx,
) -> Result<SemiCooTensor<V>> {
    ts_any(op, x, s, ctx)
}

/// gHiCOO-TS: identical value computation on the gHiCOO value array —
/// [`ts_any`].
///
/// # Errors
///
/// Returns [`Error::DivisionByZero`] for `Div` with `s == 0`.
pub fn ts_ghicoo<V: Value>(
    op: TsOp,
    x: &GHiCooTensor<V>,
    s: V,
    ctx: &Ctx,
) -> Result<GHiCooTensor<V>> {
    ts_any(op, x, s, ctx)
}

/// sHiCOO-TS: identical value computation on the sHiCOO value array —
/// [`ts_any`].
///
/// # Errors
///
/// Returns [`Error::DivisionByZero`] for `Div` with `s == 0`.
pub fn ts_shicoo<V: Value>(
    op: TsOp,
    x: &SHiCooTensor<V>,
    s: V,
    ctx: &Ctx,
) -> Result<SHiCooTensor<V>> {
    ts_any(op, x, s, ctx)
}

/// CSF-TS: the fiber tree is reused and the leaf values transformed —
/// [`ts_any`].
///
/// # Errors
///
/// Returns [`Error::DivisionByZero`] for `Div` with `s == 0`.
pub fn ts_csf<V: Value>(op: TsOp, x: &CsfTensor<V>, s: V, ctx: &Ctx) -> Result<CsfTensor<V>> {
    ts_any(op, x, s, ctx)
}

/// F-COO-TS: the fiber layout is reused and the values transformed —
/// [`ts_any`].
///
/// # Errors
///
/// Returns [`Error::DivisionByZero`] for `Div` with `s == 0`.
pub fn ts_fcoo<V: Value>(op: TsOp, x: &FCooTensor<V>, s: V, ctx: &Ctx) -> Result<FCooTensor<V>> {
    ts_any(op, x, s, ctx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pasta_core::Shape;

    fn base() -> CooTensor<f32> {
        CooTensor::from_entries(
            Shape::new(vec![4, 4]),
            vec![(vec![0, 0], 1.0), (vec![1, 2], -2.0), (vec![3, 3], 4.0)],
        )
        .unwrap()
    }

    #[test]
    fn all_ops() {
        let x = base();
        let ctx = Ctx::sequential();
        assert_eq!(ts_coo(TsOp::Add, &x, 1.0, &ctx).unwrap().vals(), &[2.0, -1.0, 5.0]);
        assert_eq!(ts_coo(TsOp::Sub, &x, 1.0, &ctx).unwrap().vals(), &[0.0, -3.0, 3.0]);
        assert_eq!(ts_coo(TsOp::Mul, &x, 2.0, &ctx).unwrap().vals(), &[2.0, -4.0, 8.0]);
        assert_eq!(ts_coo(TsOp::Div, &x, 2.0, &ctx).unwrap().vals(), &[0.5, -1.0, 2.0]);
    }

    #[test]
    fn div_by_zero_rejected() {
        let x = base();
        assert!(matches!(
            ts_coo(TsOp::Div, &x, 0.0, &Ctx::sequential()),
            Err(Error::DivisionByZero)
        ));
        let hx = HiCooTensor::from_coo(&x, 2).unwrap();
        assert!(matches!(
            ts_hicoo(TsOp::Div, &hx, 0.0, &Ctx::sequential()),
            Err(Error::DivisionByZero)
        ));
    }

    #[test]
    fn pattern_preserved() {
        let x = base();
        let y = ts_coo(TsOp::Mul, &x, 5.0, &Ctx::sequential()).unwrap();
        assert!(x.same_pattern(&y));
    }

    #[test]
    fn scalar_add_touches_only_nonzeros() {
        // TS on sparse tensors is defined on stored values only: zeros stay zero.
        let x = base();
        let y = ts_coo(TsOp::Add, &x, 100.0, &Ctx::sequential()).unwrap();
        assert_eq!(y.nnz(), 3);
        assert_eq!(y.get(&[0, 1]), None);
    }

    #[test]
    fn parallel_matches_sequential() {
        let entries: Vec<(Vec<u32>, f32)> =
            (0..5000u32).map(|i| (vec![i % 70, i / 70], (i as f32).cos())).collect();
        let x = CooTensor::from_entries(Shape::new(vec![70, 80]), entries).unwrap();
        let seq = ts_coo(TsOp::Mul, &x, 1.25, &Ctx::sequential()).unwrap();
        let par = ts_coo(TsOp::Mul, &x, 1.25, &Ctx::new(8, pasta_par::Schedule::Guided)).unwrap();
        assert_eq!(seq, par);
    }

    #[test]
    fn hicoo_matches_coo() {
        let x = base();
        let hx = HiCooTensor::from_coo(&x, 4).unwrap();
        let y_coo = ts_coo(TsOp::Mul, &x, -3.0, &Ctx::sequential()).unwrap();
        let y_hicoo = ts_hicoo(TsOp::Mul, &hx, -3.0, &Ctx::sequential()).unwrap();
        let mut a = y_hicoo.to_coo();
        a.sort();
        let mut b = y_coo;
        b.sort();
        assert_eq!(a, b);
        // Structure untouched.
        assert_eq!(y_hicoo.bptr(), hx.bptr());
    }

    #[test]
    fn blocked_and_fiber_formats_match_coo() {
        let x3 = CooTensor::from_entries(
            Shape::new(vec![4, 4, 2]),
            vec![(vec![0, 0, 0], 1.0_f32), (vec![1, 2, 1], -2.0), (vec![3, 3, 0], 4.0)],
        )
        .unwrap();
        let ctx = Ctx::sequential();
        let want = {
            let mut w = ts_coo(TsOp::Add, &x3, 0.5, &ctx).unwrap();
            w.sort();
            w
        };

        let gx = GHiCooTensor::from_coo(&x3, 2, &[true, true, false]).unwrap();
        let mut got = ts_ghicoo(TsOp::Add, &gx, 0.5, &ctx).unwrap().to_coo();
        got.sort();
        assert_eq!(got, want);

        let sx = SemiCooTensor::from_fibers(
            Shape::new(vec![3, 4, 2]),
            vec![2],
            vec![vec![0, 1], vec![0, 2]],
            vec![1.0, 2.0, 3.0, 4.0],
        )
        .unwrap();
        let want_s = {
            let mut w = ts_coo(TsOp::Mul, &sx.to_coo(), 2.0, &ctx).unwrap();
            w.sort();
            w
        };
        let y = ts_scoo(TsOp::Mul, &sx, 2.0, &ctx).unwrap();
        let mut got_s = y.to_coo();
        got_s.sort();
        assert_eq!(got_s, want_s);
        assert_eq!(y.sparse_inds(0), sx.sparse_inds(0));

        let shx = SHiCooTensor::from_scoo(&sx, 2).unwrap();
        let z = ts_shicoo(TsOp::Mul, &shx, 2.0, &ctx).unwrap();
        let mut got_sh = z.to_scoo().unwrap().to_coo();
        got_sh.sort();
        assert_eq!(got_sh, want_s);
        assert_eq!(z.bptr(), shx.bptr());
    }

    #[test]
    fn csf_and_fcoo_match_coo() {
        let x3 = CooTensor::from_entries(
            Shape::new(vec![4, 4, 2]),
            vec![(vec![0, 0, 0], 1.0_f32), (vec![1, 2, 1], -2.0), (vec![3, 3, 0], 4.0)],
        )
        .unwrap();
        let ctx = Ctx::sequential();
        let want = {
            let mut w = ts_coo(TsOp::Sub, &x3, 0.25, &ctx).unwrap();
            w.sort();
            w
        };
        let cx = CsfTensor::from_coo(&x3, &[0, 1, 2]).unwrap();
        let yc = ts_csf(TsOp::Sub, &cx, 0.25, &ctx).unwrap();
        let mut got_c = yc.to_coo();
        got_c.sort();
        assert_eq!(got_c, want);
        assert_eq!(yc.mode_order(), cx.mode_order());

        let fx = FCooTensor::from_coo(&x3, 2).unwrap();
        let yf = ts_fcoo(TsOp::Sub, &fx, 0.25, &ctx).unwrap();
        let mut got_f = yf.to_coo();
        got_f.sort();
        assert_eq!(got_f, want);
        assert_eq!(yf.start_flags(), fx.start_flags());
    }

    #[test]
    fn div_by_zero_rejected_all_formats() {
        let x3 =
            CooTensor::from_entries(Shape::new(vec![4, 4, 2]), vec![(vec![1, 2, 1], -2.0_f32)])
                .unwrap();
        let ctx = Ctx::sequential();
        let gx = GHiCooTensor::from_coo(&x3, 2, &[true, true, false]).unwrap();
        assert!(matches!(ts_ghicoo(TsOp::Div, &gx, 0.0, &ctx), Err(Error::DivisionByZero)));
        let sx = SemiCooTensor::from_fibers(
            Shape::new(vec![3, 2]),
            vec![1],
            vec![vec![0]],
            vec![1.0, 2.0],
        )
        .unwrap();
        assert!(matches!(ts_scoo(TsOp::Div, &sx, 0.0, &ctx), Err(Error::DivisionByZero)));
        let shx = SHiCooTensor::from_scoo(&sx, 2).unwrap();
        assert!(matches!(ts_shicoo(TsOp::Div, &shx, 0.0, &ctx), Err(Error::DivisionByZero)));
    }
}
