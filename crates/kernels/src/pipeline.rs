//! The unified plan→execute pipeline: operator selectors, execution
//! context, contention-free scheduling primitives, and the format/kernel
//! registry the GPU backend and the conformance matrix derive their
//! coverage from.
//!
//! This module folds the former `ops`/`ctx`/`sched` modules into one
//! place: a kernel invocation is a *plan* (untimed preprocessing built
//! from format capabilities plus the strategy analysis in
//! [`analysis`](crate::analysis)) followed by an *execute* (the timed
//! value computation), dispatched through [`KernelPlan`] onto the serial
//! CPU path or the `pasta-par` pool; the `simt` crate consumes the same
//! [`registry`] for its GPU coverage.

use crate::analysis::Kernel;
use crate::microkernel::add_assign;
use pasta_core::{Coord, Value};
use pasta_obs::{counters, instant, CounterId};
use pasta_par::Schedule;

/// The four element-wise binary operators of the TEW kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EwOp {
    /// `z = x + y`
    Add,
    /// `z = x − y`
    Sub,
    /// `z = x ∘ y` (Hadamard product)
    Mul,
    /// `z = x ⊘ y` (element-wise division)
    Div,
}

impl EwOp {
    /// Applies the operator to one element pair.
    #[inline]
    pub fn apply<V: Value>(self, x: V, y: V) -> V {
        match self {
            EwOp::Add => x + y,
            EwOp::Sub => x - y,
            EwOp::Mul => x * y,
            EwOp::Div => x / y,
        }
    }

    /// Whether a zero on either side annihilates the result (`Mul`), meaning
    /// the general-pattern output is the pattern *intersection* rather than
    /// the union.
    pub fn is_intersecting(self) -> bool {
        matches!(self, EwOp::Mul)
    }

    /// All four operators.
    pub const ALL: [EwOp; 4] = [EwOp::Add, EwOp::Sub, EwOp::Mul, EwOp::Div];
}

impl std::fmt::Display for EwOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            EwOp::Add => "add",
            EwOp::Sub => "sub",
            EwOp::Mul => "mul",
            EwOp::Div => "div",
        })
    }
}

/// The four tensor-scalar operators of the TS kernel.
///
/// The paper implements TSA and TSM, "sufficient to support all the four
/// operations"; the suite provides all four directly since `Sub`/`Div` cost
/// the same.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TsOp {
    /// `y = x + s` applied to non-zeros.
    Add,
    /// `y = x − s` applied to non-zeros.
    Sub,
    /// `y = x × s`.
    Mul,
    /// `y = x ÷ s`.
    Div,
}

impl TsOp {
    /// Applies the operator to one non-zero.
    #[inline]
    pub fn apply<V: Value>(self, x: V, s: V) -> V {
        match self {
            TsOp::Add => x + s,
            TsOp::Sub => x - s,
            TsOp::Mul => x * s,
            TsOp::Div => x / s,
        }
    }

    /// All four operators.
    pub const ALL: [TsOp; 4] = [TsOp::Add, TsOp::Sub, TsOp::Mul, TsOp::Div];
}

impl std::fmt::Display for TsOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            TsOp::Add => "add",
            TsOp::Sub => "sub",
            TsOp::Mul => "mul",
            TsOp::Div => "div",
        })
    }
}

#[cfg(test)]
mod op_tests {
    use super::*;

    #[test]
    fn ew_semantics() {
        assert_eq!(EwOp::Add.apply(2.0_f32, 3.0), 5.0);
        assert_eq!(EwOp::Sub.apply(2.0_f32, 3.0), -1.0);
        assert_eq!(EwOp::Mul.apply(2.0_f32, 3.0), 6.0);
        assert_eq!(EwOp::Div.apply(3.0_f32, 2.0), 1.5);
        assert!(EwOp::Mul.is_intersecting());
        assert!(!EwOp::Add.is_intersecting());
        assert_eq!(EwOp::ALL.len(), 4);
    }

    #[test]
    fn ts_semantics() {
        assert_eq!(TsOp::Add.apply(2.0_f64, 0.5), 2.5);
        assert_eq!(TsOp::Sub.apply(2.0_f64, 0.5), 1.5);
        assert_eq!(TsOp::Mul.apply(2.0_f64, 0.5), 1.0);
        assert_eq!(TsOp::Div.apply(2.0_f64, 0.5), 4.0);
    }

    #[test]
    fn display_names() {
        assert_eq!(EwOp::Add.to_string(), "add");
        assert_eq!(TsOp::Div.to_string(), "div");
    }
}

/// Which contention-free MTTKRP schedule to use (see
/// [`choose_mttkrp_strategy`](crate::analysis::choose_mttkrp_strategy)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StrategyChoice {
    /// Let the cost model pick (the default).
    #[default]
    Auto,
    /// Force owner-computes (fiber-aligned non-zero ranges; falls back to
    /// privatization if the mode-`n` indices are not non-decreasing).
    Owner,
    /// Force privatized reduction (per-worker accumulators + tree merge).
    Privatized,
}

/// Whether kernel *chains* (TTM chains, multi-mode TTV products, the CP-ALS
/// sweep) execute fused through per-thread workspaces or materialize every
/// intermediate sparse tensor (see [`fused`](crate::fused)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FusionChoice {
    /// Let the fuse-vs-materialize cost model in
    /// [`analysis`](crate::analysis) pick (the default).
    #[default]
    Auto,
    /// Force the fused path (workspaces, no intermediate tensors).
    Fuse,
    /// Force the kernel-at-a-time path (materialized intermediates) — the
    /// ablation baseline.
    Materialize,
}

/// How a kernel should execute: worker count and loop schedule.
///
/// # Examples
///
/// ```
/// use pasta_kernels::Ctx;
/// use pasta_par::Schedule;
///
/// let seq = Ctx::sequential();
/// assert_eq!(seq.threads, 1);
/// let par = Ctx::new(8, Schedule::Static);
/// assert_eq!(par.threads, 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ctx {
    /// Number of worker threads (1 = sequential).
    pub threads: usize,
    /// Loop scheduling strategy for the parallel loops.
    pub schedule: Schedule,
    /// MTTKRP scheduling strategy (default: cost-model auto-selection).
    pub mttkrp: StrategyChoice,
    /// Measured scheduling parameters (from the [`tune`](crate::tune)
    /// tables); `None` means the built-in model constants apply.
    pub tuning: Option<crate::tune::TunedParams>,
    /// Fuse-vs-materialize choice for kernel chains (default: cost model).
    pub fusion: FusionChoice,
}

impl Ctx {
    /// A context with explicit thread count and schedule.
    pub fn new(threads: usize, schedule: Schedule) -> Self {
        Self {
            threads: threads.max(1),
            schedule,
            mttkrp: StrategyChoice::Auto,
            tuning: None,
            fusion: FusionChoice::Auto,
        }
    }

    /// Single-threaded execution.
    pub fn sequential() -> Self {
        Self {
            threads: 1,
            schedule: Schedule::Static,
            mttkrp: StrategyChoice::Auto,
            tuning: None,
            fusion: FusionChoice::Auto,
        }
    }

    /// All available cores with the suite's default dynamic schedule
    /// (the paper sets threads to the number of physical cores).
    pub fn parallel() -> Self {
        Self {
            threads: pasta_par::default_threads(),
            schedule: Schedule::default_dynamic(),
            mttkrp: StrategyChoice::Auto,
            tuning: None,
            fusion: FusionChoice::Auto,
        }
    }

    /// The same context with a forced MTTKRP strategy.
    pub fn with_mttkrp(mut self, choice: StrategyChoice) -> Self {
        self.mttkrp = choice;
        self
    }

    /// The same context with a forced fuse-vs-materialize choice for
    /// kernel chains.
    pub fn with_fusion(mut self, choice: FusionChoice) -> Self {
        self.fusion = choice;
        self
    }

    /// The same context carrying measured tuning parameters. If the
    /// context's schedule is dynamic, its chunk size follows the tuned one;
    /// static/guided schedules are left alone (they have no chunk knob).
    pub fn with_tuning(mut self, params: crate::tune::TunedParams) -> Self {
        if matches!(self.schedule, Schedule::Dynamic(_)) {
            self.schedule = Schedule::Dynamic(params.chunk.max(1));
        }
        self.tuning = Some(params);
        self
    }

    /// The dense-privatization threshold the MTTKRP strategy choice should
    /// use: the tuned one if present, else the model default.
    pub fn dense_threshold(&self) -> usize {
        self.tuning.map(|t| t.dense_threshold).unwrap_or(crate::analysis::DEFAULT_DENSE_THRESHOLD)
    }

    /// The HiCOO block size plans built under this context should use: the
    /// tuned one if present, else the suite default `B = 128`.
    pub fn block_size(&self) -> u32 {
        self.tuning.map(|t| t.block_size).unwrap_or(crate::tune::DEFAULT_BLOCK_SIZE)
    }

    /// Whether this context runs on one thread.
    pub fn is_sequential(&self) -> bool {
        self.threads == 1
    }
}

impl Default for Ctx {
    fn default() -> Self {
        Self::parallel()
    }
}

#[cfg(test)]
mod ctx_tests {
    use super::*;

    #[test]
    fn constructors() {
        assert!(Ctx::sequential().is_sequential());
        assert!(!Ctx::new(4, Schedule::Guided).is_sequential());
        assert_eq!(Ctx::new(0, Schedule::Static).threads, 1, "clamped to 1");
        assert!(Ctx::default().threads >= 1);
        assert_eq!(Ctx::default().mttkrp, StrategyChoice::Auto);
        let forced = Ctx::parallel().with_mttkrp(StrategyChoice::Owner);
        assert_eq!(forced.mttkrp, StrategyChoice::Owner);
    }

    #[test]
    fn plans_built_counter_accumulates() {
        // The registry is shared across tests; only verify delta behavior.
        pasta_obs::set_counting(true);
        let before = counters().get(CounterId::PlansBuilt);
        KernelPlan::new(Kernel::Ttv, FormatKind::Coo, BackendKind::Cpu, &Ctx::sequential())
            .unwrap();
        assert!(counters().get(CounterId::PlansBuilt) > before);
    }
}

/// Splits `0..rows_idx.len()` into at most `parts` contiguous ranges that
/// never cut through a run of equal values in `rows_idx` (which must be
/// non-decreasing — the mode-`n` index array of a mode-`n`-outermost-sorted
/// tensor).
///
/// Cuts start at the balanced positions `k·nnz/parts` and advance forward to
/// the next row boundary, so ranges are near-equal for typical row-length
/// distributions and a single giant row degrades to fewer (never incorrect)
/// ranges. Empty ranges are dropped; the concatenation of the returned
/// ranges is exactly `0..rows_idx.len()`.
pub fn owner_ranges(rows_idx: &[Coord], parts: usize) -> Vec<std::ops::Range<usize>> {
    let nnz = rows_idx.len();
    let parts = parts.max(1);
    debug_assert!(rows_idx.windows(2).all(|w| w[0] <= w[1]), "owner_ranges needs sorted rows");
    let mut ranges = Vec::with_capacity(parts);
    let mut start = 0usize;
    for k in 1..=parts {
        if start >= nnz {
            break;
        }
        let mut cut = if k == parts { nnz } else { (k * nnz / parts).max(start) };
        // Advance to the next row boundary so no row straddles two ranges.
        while cut < nnz && cut > 0 && rows_idx[cut] == rows_idx[cut - 1] {
            cut += 1;
        }
        if cut > start {
            ranges.push(start..cut);
            start = cut;
        }
    }
    ranges
}

/// An open-addressing hash accumulator mapping output rows to `rank`-wide
/// value blocks.
///
/// Used as the per-worker private buffer of the privatized-sparse MTTKRP
/// strategy: capacity scales with the rows a worker actually touches, not
/// the mode dimension. Keys are row indices (`u32::MAX` is the empty
/// sentinel — mode dimensions are bounded by `Coord::MAX` so no valid row
/// collides with it); probing is linear; the table rehashes at 7/8 load.
#[derive(Debug)]
pub struct SparseAcc<V> {
    keys: Vec<u32>,
    vals: Vec<V>,
    rank: usize,
    len: usize,
}

const EMPTY: u32 = u32::MAX;

impl<V: Value> SparseAcc<V> {
    /// Creates an accumulator for `rank`-wide rows with room for about
    /// `expected_rows` distinct rows before the first rehash.
    pub fn new(rank: usize, expected_rows: usize) -> Self {
        let cap = (expected_rows.max(4) * 8 / 7 + 1).next_power_of_two();
        Self { keys: vec![EMPTY; cap], vals: vec![V::ZERO; cap * rank], rank, len: 0 }
    }

    /// The number of distinct rows touched.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no rows were touched.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The accumulator's memory footprint in bytes (keys + values).
    pub fn bytes(&self) -> usize {
        self.keys.len() * std::mem::size_of::<u32>() + self.vals.len() * V::BYTES
    }

    #[inline]
    fn slot(&self, row: u32) -> usize {
        // Fibonacci multiplicative hash: spreads clustered row indices
        // across the power-of-two table.
        let h = (row as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> (64 - self.keys.len().trailing_zeros())) as usize
    }

    /// Returns the `rank`-wide accumulator block for `row`, inserting a
    /// zeroed block on first touch.
    pub fn row_mut(&mut self, row: u32) -> &mut [V] {
        debug_assert_ne!(row, EMPTY);
        if (self.len + 1) * 8 > self.keys.len() * 7 {
            self.grow();
        }
        let mask = self.keys.len() - 1;
        let mut i = self.slot(row);
        loop {
            let k = self.keys[i];
            if k == row {
                break;
            }
            if k == EMPTY {
                self.keys[i] = row;
                self.len += 1;
                break;
            }
            i = (i + 1) & mask;
        }
        &mut self.vals[i * self.rank..(i + 1) * self.rank]
    }

    fn grow(&mut self) {
        let old_keys = std::mem::replace(&mut self.keys, vec![EMPTY; 0]);
        let old_vals = std::mem::take(&mut self.vals);
        let cap = (old_keys.len() * 2).max(8);
        self.keys = vec![EMPTY; cap];
        self.vals = vec![V::ZERO; cap * self.rank];
        self.len = 0;
        for (i, &k) in old_keys.iter().enumerate() {
            if k != EMPTY {
                let block = &old_vals[i * self.rank..(i + 1) * self.rank];
                self.row_mut(k).copy_from_slice(block);
            }
        }
    }

    /// Folds `other` into `self` row-by-row (the tree-reduction merge).
    pub fn merge(&mut self, other: &SparseAcc<V>) {
        debug_assert_eq!(self.rank, other.rank);
        for (i, &k) in other.keys.iter().enumerate() {
            if k != EMPTY {
                let src = &other.vals[i * other.rank..(i + 1) * other.rank];
                add_assign(self.row_mut(k), src);
            }
        }
    }

    /// Adds every accumulated row into the dense output (row-major,
    /// `rank` columns).
    pub fn drain_into(&self, out: &mut [V]) {
        for (i, &k) in self.keys.iter().enumerate() {
            if k != EMPTY {
                let src = &self.vals[i * self.rank..(i + 1) * self.rank];
                let dst = &mut out[k as usize * self.rank..(k as usize + 1) * self.rank];
                add_assign(dst, src);
            }
        }
    }
}

/// The sparse tensor formats the suite implements, as registry keys.
///
/// Each variant corresponds to one concrete tensor type in `pasta-core`;
/// the label is the lowercase name used in conformance cell ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FormatKind {
    /// Coordinate format ([`CooTensor`](pasta_core::CooTensor)).
    Coo,
    /// Blocked coordinate format ([`HiCooTensor`](pasta_core::HiCooTensor)).
    Hicoo,
    /// Per-mode blocked COO ([`GHiCooTensor`](pasta_core::GHiCooTensor)).
    Ghicoo,
    /// Semi-sparse COO ([`SemiCooTensor`](pasta_core::SemiCooTensor)).
    Scoo,
    /// Semi-sparse HiCOO ([`SHiCooTensor`](pasta_core::SHiCooTensor)).
    Shicoo,
    /// Compressed sparse fiber ([`CsfTensor`](pasta_core::CsfTensor)).
    Csf,
    /// Flagged COO ([`FCooTensor`](pasta_core::FCooTensor)).
    Fcoo,
}

impl FormatKind {
    /// All seven formats.
    pub const ALL: [FormatKind; 7] = [
        FormatKind::Coo,
        FormatKind::Hicoo,
        FormatKind::Ghicoo,
        FormatKind::Scoo,
        FormatKind::Shicoo,
        FormatKind::Csf,
        FormatKind::Fcoo,
    ];

    /// The lowercase label used in conformance cell ids.
    pub fn label(self) -> &'static str {
        match self {
            FormatKind::Coo => "coo",
            FormatKind::Hicoo => "hicoo",
            FormatKind::Ghicoo => "ghicoo",
            FormatKind::Scoo => "scoo",
            FormatKind::Shicoo => "shicoo",
            FormatKind::Csf => "csf",
            FormatKind::Fcoo => "fcoo",
        }
    }
}

impl std::fmt::Display for FormatKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Where a kernel executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// Host execution — serial, or the `pasta-par` pool when
    /// [`Ctx::threads`] exceeds one.
    Cpu,
    /// The `simt` block/thread execution model.
    Gpu,
}

impl BackendKind {
    /// Both backends.
    pub const ALL: [BackendKind; 2] = [BackendKind::Cpu, BackendKind::Gpu];

    /// The lowercase label used in conformance cell ids.
    pub fn label(self) -> &'static str {
        match self {
            BackendKind::Cpu => "cpu",
            BackendKind::Gpu => "gpu",
        }
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One implemented (kernel, format, backend) combination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Combo {
    /// Which of the five kernels.
    pub kernel: Kernel,
    /// The input tensor format.
    pub format: FormatKind,
    /// Where it runs.
    pub backend: BackendKind,
}

impl std::fmt::Display for Combo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}/{}", self.kernel.to_string().to_lowercase(), self.format, self.backend)
    }
}

/// Every (kernel, format, backend) combination the suite implements.
///
/// This is the single source of truth for coverage: the conformance
/// matrix generates its cells from it (and must list an explicit skip
/// for any combo it cannot check), and the `simt` crate's
/// `gpu_supported()` list is tested against its GPU rows. Adding a
/// kernel-format implementation without registering it here fails the
/// completeness tests.
pub fn registry() -> Vec<Combo> {
    use BackendKind::{Cpu, Gpu};
    let mut combos = Vec::new();
    // Element-wise kernels run on every format through the generic
    // FormatAccess path: structure is reused, only values are rewritten.
    for format in FormatKind::ALL {
        combos.push(Combo { kernel: Kernel::Tew, format, backend: Cpu });
        combos.push(Combo { kernel: Kernel::Ts, format, backend: Cpu });
    }
    // Fiber-contracting kernels need per-format plans.
    for format in [FormatKind::Coo, FormatKind::Hicoo, FormatKind::Csf, FormatKind::Fcoo] {
        combos.push(Combo { kernel: Kernel::Ttv, format, backend: Cpu });
    }
    for format in [FormatKind::Coo, FormatKind::Hicoo, FormatKind::Scoo] {
        combos.push(Combo { kernel: Kernel::Ttm, format, backend: Cpu });
    }
    for format in [FormatKind::Coo, FormatKind::Hicoo, FormatKind::Csf] {
        combos.push(Combo { kernel: Kernel::Mttkrp, format, backend: Cpu });
    }
    // GPU coverage mirrors the paper's GPU kernel set.
    for (kernel, format) in [
        (Kernel::Tew, FormatKind::Coo),
        (Kernel::Ts, FormatKind::Coo),
        (Kernel::Ttv, FormatKind::Coo),
        (Kernel::Ttv, FormatKind::Fcoo),
        (Kernel::Ttm, FormatKind::Coo),
        (Kernel::Mttkrp, FormatKind::Coo),
        (Kernel::Mttkrp, FormatKind::Hicoo),
    ] {
        combos.push(Combo { kernel, format, backend: Gpu });
    }
    combos
}

/// A fused kernel-chain expression shape (see [`fused`](crate::fused)).
///
/// These are the *chains* the fused-expression layer executes through
/// per-thread workspaces instead of materializing intermediates; they sit
/// beside the single-kernel [`Kernel`] enum rather than extending it, so
/// the five-kernel cost tables and tuners are untouched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FusedExprKind {
    /// Multi-mode TTV∘TTV product: contract several modes with vectors in
    /// one pass ([`FusedTtvPlan`](crate::fused::FusedTtvPlan)).
    TtvChain,
    /// The TTM chain of a Tucker sweep: contract every mode but one with
    /// factor matrices ([`FusedTtmChainPlan`](crate::fused::FusedTtmChainPlan)).
    TtmChain,
    /// One CP-ALS sweep: MTTKRP → Hadamard-of-Grams → solve → normalize
    /// with cached grams and plans ([`FusedAlsSweep`](crate::fused::FusedAlsSweep)).
    AlsSweep,
}

impl FusedExprKind {
    /// All fused expression shapes.
    pub const ALL: [FusedExprKind; 3] =
        [FusedExprKind::TtvChain, FusedExprKind::TtmChain, FusedExprKind::AlsSweep];

    /// The lowercase label used in conformance cell ids.
    pub fn label(self) -> &'static str {
        match self {
            FusedExprKind::TtvChain => "ttvchain",
            FusedExprKind::TtmChain => "ttmchain",
            FusedExprKind::AlsSweep => "alssweep",
        }
    }
}

impl std::fmt::Display for FusedExprKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One implemented (fused expression, input format, backend) route.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FusedRoute {
    /// Which chain shape.
    pub expr: FusedExprKind,
    /// The input tensor format the chain reads.
    pub format: FormatKind,
    /// Where it runs.
    pub backend: BackendKind,
}

impl std::fmt::Display for FusedRoute {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "fused-{}/{}/{}", self.expr, self.format, self.backend)
    }
}

/// Every fused chain route the suite implements.
///
/// Like [`registry`], this is the source of truth for coverage: the
/// conformance matrix generates `fused-*` cells from it (composed dense
/// oracles, explicit per-cell ULP budgets), and the completeness tests
/// fail if a fused driver exists without a registered route.
pub fn fused_registry() -> Vec<FusedRoute> {
    use BackendKind::Cpu;
    vec![
        FusedRoute { expr: FusedExprKind::TtvChain, format: FormatKind::Coo, backend: Cpu },
        FusedRoute { expr: FusedExprKind::TtmChain, format: FormatKind::Coo, backend: Cpu },
        FusedRoute { expr: FusedExprKind::AlsSweep, format: FormatKind::Coo, backend: Cpu },
        FusedRoute { expr: FusedExprKind::AlsSweep, format: FormatKind::Hicoo, backend: Cpu },
    ]
}

/// How a planned kernel will execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecRoute {
    /// One host thread, no pool involvement.
    SerialCpu,
    /// The `pasta-par` work-stealing pool.
    PoolCpu {
        /// Worker count the pool will use.
        threads: usize,
    },
    /// The `simt` block/thread execution model.
    Gpu,
}

/// A validated plan: which (kernel, format, backend) combination will run
/// and over which execution route.
///
/// This is the single dispatch point of the plan→execute pipeline: format
/// drivers build their untimed preprocessing (sorting, fiber discovery,
/// output allocation) against a `KernelPlan`, then the timed execute step
/// follows [`route`](KernelPlan::route). Constructing a plan for an
/// unregistered combination is an error, so dispatch can never silently
/// fall through to an unimplemented path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelPlan {
    combo: Combo,
    route: ExecRoute,
    mttkrp: StrategyChoice,
}

impl KernelPlan {
    /// Plans `kernel` over `format` on `backend` under `ctx`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::OperandMismatch`](pasta_core::Error::OperandMismatch)
    /// when the combination is not in the [`registry`].
    pub fn new(
        kernel: Kernel,
        format: FormatKind,
        backend: BackendKind,
        ctx: &Ctx,
    ) -> pasta_core::Result<Self> {
        let combo = Combo { kernel, format, backend };
        if !registry().contains(&combo) {
            return Err(pasta_core::Error::OperandMismatch {
                what: format!("no implementation registered for {combo}"),
            });
        }
        let route = match backend {
            BackendKind::Gpu => ExecRoute::Gpu,
            BackendKind::Cpu if ctx.is_sequential() => ExecRoute::SerialCpu,
            BackendKind::Cpu => ExecRoute::PoolCpu { threads: ctx.threads },
        };
        counters().add(CounterId::PlansBuilt, 1);
        instant("plan", "pipeline.plan", combo.format.label(), ctx.threads as u64, 0, 0);
        Ok(Self { combo, route, mttkrp: ctx.mttkrp })
    }

    /// The combination this plan executes.
    pub fn combo(&self) -> Combo {
        self.combo
    }

    /// The execution route the combination resolved to.
    pub fn route(&self) -> ExecRoute {
        self.route
    }

    /// The MTTKRP strategy choice carried from the context.
    pub fn mttkrp(&self) -> StrategyChoice {
        self.mttkrp
    }
}

#[cfg(test)]
mod registry_tests {
    use super::*;

    #[test]
    fn registry_has_no_duplicates() {
        let combos = registry();
        for (i, a) in combos.iter().enumerate() {
            for b in &combos[i + 1..] {
                assert_ne!(a, b, "duplicate combo {a}");
            }
        }
    }

    #[test]
    fn elementwise_kernels_cover_every_format() {
        let combos = registry();
        for kernel in [Kernel::Tew, Kernel::Ts] {
            for format in FormatKind::ALL {
                let combo = Combo { kernel, format, backend: BackendKind::Cpu };
                assert!(combos.contains(&combo), "missing {combo}");
            }
        }
    }

    #[test]
    fn every_kernel_has_coo_on_both_backends() {
        let combos = registry();
        for kernel in Kernel::ALL {
            for backend in BackendKind::ALL {
                let combo = Combo { kernel, format: FormatKind::Coo, backend };
                assert!(combos.contains(&combo), "missing {combo}");
            }
        }
    }

    #[test]
    fn combo_display_matches_cell_id_grammar() {
        let combo =
            Combo { kernel: Kernel::Mttkrp, format: FormatKind::Hicoo, backend: BackendKind::Gpu };
        assert_eq!(combo.to_string(), "mttkrp/hicoo/gpu");
    }

    #[test]
    fn plan_routes_follow_ctx() {
        let seq =
            KernelPlan::new(Kernel::Ttv, FormatKind::Coo, BackendKind::Cpu, &Ctx::sequential())
                .unwrap();
        assert_eq!(seq.route(), ExecRoute::SerialCpu);
        let par = KernelPlan::new(
            Kernel::Ttv,
            FormatKind::Coo,
            BackendKind::Cpu,
            &Ctx::new(4, Schedule::Static),
        )
        .unwrap();
        assert_eq!(par.route(), ExecRoute::PoolCpu { threads: 4 });
        let gpu =
            KernelPlan::new(Kernel::Ttv, FormatKind::Coo, BackendKind::Gpu, &Ctx::sequential())
                .unwrap();
        assert_eq!(gpu.route(), ExecRoute::Gpu);
        assert_eq!(gpu.combo().kernel, Kernel::Ttv);
        assert_eq!(gpu.mttkrp(), StrategyChoice::Auto);
    }

    #[test]
    fn plan_rejects_unregistered_combo() {
        // TTM over F-COO is not implemented anywhere.
        let err =
            KernelPlan::new(Kernel::Ttm, FormatKind::Fcoo, BackendKind::Cpu, &Ctx::sequential());
        assert!(err.is_err());
    }
}

#[cfg(test)]
mod sched_tests {
    use super::*;

    #[test]
    fn owner_ranges_partition_and_align() {
        let rows: Vec<Coord> = vec![0, 0, 0, 1, 1, 2, 2, 2, 2, 3, 5, 5];
        for parts in 1..=8 {
            let rs = owner_ranges(&rows, parts);
            // Exact partition of 0..nnz.
            let mut cursor = 0;
            for r in &rs {
                assert_eq!(r.start, cursor);
                cursor = r.end;
            }
            assert_eq!(cursor, rows.len());
            // No row straddles a boundary.
            for r in &rs {
                if r.start > 0 {
                    assert_ne!(rows[r.start], rows[r.start - 1], "parts={parts} range={r:?}");
                }
            }
            assert!(rs.len() <= parts);
        }
    }

    #[test]
    fn owner_ranges_single_giant_row() {
        let rows = vec![7u32; 100];
        let rs = owner_ranges(&rows, 4);
        assert_eq!(rs, vec![0..100]);
    }

    #[test]
    fn owner_ranges_empty() {
        assert!(owner_ranges(&[], 4).is_empty());
    }

    #[test]
    fn sparse_acc_accumulates_and_grows() {
        let mut acc = SparseAcc::<f64>::new(3, 2);
        // Insert far more rows than the initial capacity to force rehashes.
        for pass in 0..2 {
            for row in 0..200u32 {
                let block = acc.row_mut(row * 1000);
                for (j, b) in block.iter_mut().enumerate() {
                    *b += (row as f64) + j as f64 + pass as f64;
                }
            }
        }
        assert_eq!(acc.len(), 200);
        let mut out = vec![0.0f64; 200_000 * 3];
        acc.drain_into(&mut out);
        for row in 0..200usize {
            for j in 0..3 {
                let want = 2.0 * row as f64 + 2.0 * j as f64 + 1.0;
                assert_eq!(out[row * 1000 * 3 + j], want, "row={row} j={j}");
            }
        }
    }

    #[test]
    fn sparse_acc_merge_matches_single() {
        let mut a = SparseAcc::<f32>::new(2, 4);
        let mut b = SparseAcc::<f32>::new(2, 4);
        for row in 0..50u32 {
            a.row_mut(row)[0] += row as f32;
            b.row_mut(row * 2)[1] += 1.0;
        }
        assert!(!a.is_empty());
        assert!(a.bytes() > 0);
        a.merge(&b);
        let mut out = vec![0.0f32; 100 * 2];
        a.drain_into(&mut out);
        for row in 0..50usize {
            assert_eq!(out[row * 2], row as f32);
            assert_eq!(out[row * 2 * 2 + 1], 1.0);
        }
    }
}
