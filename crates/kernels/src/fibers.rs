//! Shared fiber discovery and the generic fiber-cursor executors.
//!
//! TTV and TTM share their entire pre-processing: both contract mode `n`
//! over the mode-`n` fibers of the input, so both need the same sorted
//! copy / fiber index (COO) or the same fiber-in-block discovery (HiCOO).
//! This module builds each skeleton once — [`CooFibers`] and
//! [`BlockFibers`] — and exposes them through the
//! [`FiberCursor`] trait from `pasta-core`, so the timed value loops are
//! written once, generically:
//!
//! - [`ttv_exec`]: one dot product per fiber;
//! - [`ttm_exec`]: one dense `R`-row accumulation per fiber.
//!
//! Executors parallelize over *chunks* (fibers for COO, Morton blocks for
//! HiCOO, sub-tree parents for CSF), which reproduces exactly the loop
//! structure the per-format kernels had before the refactor — the
//! monomorphized generic code performs the same operations in the same
//! order, keeping results bit-identical per thread count and schedule.

use crate::microkernel::{axpy, gather_dot, prefetch_read};
use crate::pipeline::Ctx;
use pasta_core::{
    CooTensor, Coord, DenseMatrix, Error, FiberCursor, FiberIndex, GHiCooTensor, ModeIndex, Result,
    Value,
};
use pasta_par::{parallel_for, SharedSlice};

/// The COO fiber skeleton shared by [`TtvCooPlan`](crate::TtvCooPlan) and
/// [`TtmCooPlan`](crate::TtmCooPlan): a copy of the input sorted with mode
/// `n` last, the fiber index over it, and the output's sparse index
/// columns (one row per fiber).
#[derive(Debug, Clone)]
pub struct CooFibers<V> {
    x: CooTensor<V>,
    fibers: FiberIndex,
    n: usize,
    out_inds: Vec<Vec<Coord>>,
}

impl<V: Value> CooFibers<V> {
    /// Sorts a copy of `x` with mode `n` last, builds the fiber index and
    /// the per-fiber output coordinates.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidMode`] for an out-of-range mode.
    pub fn build(x: &CooTensor<V>, n: usize) -> Result<Self> {
        x.shape().check_mode(n)?;
        let mut xs = x.clone();
        xs.sort_mode_last(n);
        let fibers = FiberIndex::build(&xs, n);
        let mf = fibers.num_fibers();
        let mut out_inds: Vec<Vec<Coord>> = vec![Vec::with_capacity(mf); x.order() - 1];
        for f in 0..mf {
            let coords = fibers.fiber_coords(&xs, f);
            for (m, col) in out_inds.iter_mut().enumerate() {
                col.push(coords[m]);
            }
        }
        Ok(Self { x: xs, fibers, n, out_inds })
    }

    /// The sorted input tensor.
    pub fn tensor(&self) -> &CooTensor<V> {
        &self.x
    }

    /// The product mode.
    pub fn mode(&self) -> usize {
        self.n
    }

    /// The output's sparse index columns, one per non-`n` mode.
    pub fn out_inds(&self) -> &[Vec<Coord>] {
        &self.out_inds
    }
}

impl<V: Value> FiberCursor<V> for CooFibers<V> {
    fn num_chunks(&self) -> usize {
        self.fibers.num_fibers()
    }

    fn num_fibers(&self) -> usize {
        self.fibers.num_fibers()
    }

    fn chunk_fibers(&self, chunk: usize) -> std::ops::Range<usize> {
        chunk..chunk + 1
    }

    fn fiber_entries(&self, fiber: usize) -> std::ops::Range<usize> {
        self.fibers.fiber_range(fiber)
    }

    fn contract_inds(&self) -> &[Coord] {
        self.x.mode_inds(self.n)
    }

    fn entry_vals(&self) -> &[V] {
        self.x.vals()
    }
}

/// The blocked fiber skeleton shared by
/// [`TtvHicooPlan`](crate::TtvHicooPlan) and
/// [`TtmHicooPlan`](crate::TtmHicooPlan): the input in gHiCOO form with
/// every mode except `n` blocked, fiber boundaries found inside each
/// block, and the output's HiCOO/sHiCOO skeleton (block and element
/// indices per fiber).
///
/// Fibers nest inside blocks, so executors can parallelize over blocks
/// without races (Section III-D of the paper).
#[derive(Debug, Clone)]
pub struct BlockFibers<V> {
    g: GHiCooTensor<V>,
    n: usize,
    /// Fiber start offsets within the entry order, plus sentinel.
    fptr: Vec<usize>,
    /// Fiber range per block: block `b` owns fibers `bfptr[b]..bfptr[b+1]`.
    bfptr: Vec<usize>,
    out_binds: Vec<Vec<Coord>>,
    out_einds: Vec<Vec<u8>>,
}

impl<V: Value> BlockFibers<V> {
    /// Converts `x` to gHiCOO (mode `n` uncompressed) and finds the fibers
    /// within each block.
    ///
    /// # Errors
    ///
    /// Returns an error for an invalid mode, first-order tensor or invalid
    /// block size.
    pub fn build(x: &CooTensor<V>, n: usize, block_size: u32) -> Result<Self> {
        x.shape().check_mode(n)?;
        if x.order() < 2 {
            return Err(Error::InvalidMode { mode: n, order: x.order() });
        }
        let order = x.order();
        let blocked: Vec<bool> = (0..order).map(|m| m != n).collect();
        let g = GHiCooTensor::from_coo(x, block_size, &blocked)?;
        let other: Vec<usize> = (0..order).filter(|&m| m != n).collect();

        // Walk blocks; a new fiber starts when any blocked element index
        // changes (block coordinates are constant within a block).
        let mut fptr = Vec::new();
        let mut bfptr = Vec::with_capacity(g.num_blocks() + 1);
        let mut out_binds: Vec<Vec<Coord>> = vec![Vec::with_capacity(g.num_blocks()); other.len()];
        let mut out_einds: Vec<Vec<u8>> = vec![Vec::new(); other.len()];
        let mut fiber_count = 0usize;
        for b in 0..g.num_blocks() {
            bfptr.push(fiber_count);
            let mut prev: Option<Vec<u8>> = None;
            for x in g.block_range(b) {
                let key: Vec<u8> = other
                    .iter()
                    .map(|&m| match g.mode_index(m) {
                        ModeIndex::Blocked { einds, .. } => einds[x],
                        ModeIndex::Full(_) => unreachable!("non-product modes are blocked"),
                    })
                    .collect();
                if prev.as_ref() != Some(&key) {
                    fptr.push(x);
                    for (k, col) in out_einds.iter_mut().enumerate() {
                        col.push(key[k]);
                    }
                    fiber_count += 1;
                    prev = Some(key);
                }
            }
            for (k, &m) in other.iter().enumerate() {
                if let ModeIndex::Blocked { binds, .. } = g.mode_index(m) {
                    out_binds[k].push(binds[b]);
                }
            }
        }
        bfptr.push(fiber_count);
        fptr.push(g.nnz());

        Ok(Self { g, n, fptr, bfptr, out_binds, out_einds })
    }

    /// The gHiCOO input tensor.
    pub fn tensor(&self) -> &GHiCooTensor<V> {
        &self.g
    }

    /// The product mode.
    pub fn mode(&self) -> usize {
        self.n
    }

    /// Fiber range per block, with sentinel (the output's `bptr`).
    pub fn bfptr(&self) -> &[usize] {
        &self.bfptr
    }

    /// The output's block index columns, one per non-`n` mode.
    pub fn out_binds(&self) -> &[Vec<Coord>] {
        &self.out_binds
    }

    /// The output's element index columns, one per non-`n` mode.
    pub fn out_einds(&self) -> &[Vec<u8>] {
        &self.out_einds
    }
}

impl<V: Value> FiberCursor<V> for BlockFibers<V> {
    fn num_chunks(&self) -> usize {
        self.bfptr.len() - 1
    }

    fn num_fibers(&self) -> usize {
        self.fptr.len() - 1
    }

    fn chunk_fibers(&self, chunk: usize) -> std::ops::Range<usize> {
        self.bfptr[chunk]..self.bfptr[chunk + 1]
    }

    fn fiber_entries(&self, fiber: usize) -> std::ops::Range<usize> {
        self.fptr[fiber]..self.fptr[fiber + 1]
    }

    fn contract_inds(&self) -> &[Coord] {
        match self.g.mode_index(self.n) {
            ModeIndex::Full(finds) => finds.as_slice(),
            ModeIndex::Blocked { .. } => unreachable!("product mode is uncompressed"),
        }
    }

    fn entry_vals(&self) -> &[V] {
        self.g.vals()
    }
}

/// The one TTV value loop: per fiber, a single-accumulator dot product of
/// the fiber's values with the gathered vector entries, parallel over
/// chunks. `out` must have length [`num_fibers`](FiberCursor::num_fibers).
///
/// # Errors
///
/// Returns [`Error::OperandMismatch`] if `out` has the wrong length.
pub fn ttv_exec<V: Value, C: FiberCursor<V> + Sync>(
    cur: &C,
    vv: &[V],
    out: &mut [V],
    ctx: &Ctx,
) -> Result<()> {
    if out.len() != cur.num_fibers() {
        return Err(Error::OperandMismatch {
            what: format!("output length {} vs M_F {}", out.len(), cur.num_fibers()),
        });
    }
    let kind = cur.contract_inds();
    let vals = cur.entry_vals();
    let shared = SharedSlice::new(out);
    parallel_for(cur.num_chunks(), ctx.threads, ctx.schedule, |chunks| {
        for c in chunks {
            for f in cur.chunk_fibers(c) {
                let acc = gather_dot(vals, kind, vv, cur.fiber_entries(f));
                // SAFETY: fibers nest in chunks; chunks partition fibers,
                // so each output slot is written by exactly one worker.
                unsafe { shared.write(f, acc) };
            }
        }
    });
    Ok(())
}

/// The one TTM value loop: per fiber, zero an `R`-wide dense row and
/// accumulate `val · U[k, :]` for every entry, parallel over chunks.
/// `out` must have length `num_fibers × u.cols()`.
///
/// # Errors
///
/// Returns [`Error::OperandMismatch`] if `out` has the wrong length.
pub fn ttm_exec<V: Value, C: FiberCursor<V> + Sync>(
    cur: &C,
    u: &DenseMatrix<V>,
    out: &mut [V],
    ctx: &Ctx,
) -> Result<()> {
    let r = u.cols();
    if out.len() != cur.num_fibers() * r {
        return Err(Error::OperandMismatch {
            what: format!("output length {} vs M_F*R = {}", out.len(), cur.num_fibers() * r),
        });
    }
    let kind = cur.contract_inds();
    let vals = cur.entry_vals();
    let shared = SharedSlice::new(out);
    parallel_for(cur.num_chunks(), ctx.threads, ctx.schedule, |chunks| {
        for c in chunks {
            for f in cur.chunk_fibers(c) {
                // SAFETY: fibers nest in chunks; chunks partition fibers,
                // so each fiber's R-slot row is owned by one worker.
                let row = unsafe { shared.slice_mut(f * r..(f + 1) * r) };
                row.fill(V::ZERO);
                let ents = cur.fiber_entries(f);
                let end = ents.end;
                for x in ents {
                    // The U rows are gathered through the sparse index, so
                    // prefetch ahead where the hardware prefetcher cannot.
                    let ahead = x + 8;
                    if ahead < end {
                        prefetch_read(u.as_slice(), kind[ahead] as usize * r);
                    }
                    axpy(row, vals[x], u.row(kind[x] as usize));
                }
            }
        }
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pasta_core::Shape;

    fn sample() -> CooTensor<f64> {
        CooTensor::from_entries(
            Shape::new(vec![4, 5, 6]),
            vec![
                (vec![0, 0, 0], 1.0),
                (vec![0, 0, 5], 2.0),
                (vec![1, 2, 3], 3.0),
                (vec![3, 4, 1], 4.0),
                (vec![3, 4, 2], 5.0),
                (vec![2, 1, 0], -1.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn coo_cursor_partitions_entries() {
        let x = sample();
        let cur = CooFibers::build(&x, 2).unwrap();
        assert_eq!(cur.num_chunks(), cur.num_fibers());
        assert_eq!(cur.num_fibers(), 4);
        let mut seen = 0;
        for c in 0..cur.num_chunks() {
            for f in cur.chunk_fibers(c) {
                seen += cur.fiber_entries(f).len();
            }
        }
        assert_eq!(seen, x.nnz());
        assert_eq!(cur.entry_vals().len(), x.nnz());
        assert_eq!(cur.contract_inds().len(), x.nnz());
        assert_eq!(cur.out_inds().len(), 2);
        assert_eq!(cur.out_inds()[0].len(), 4);
    }

    #[test]
    fn block_cursor_nests_fibers_in_blocks() {
        let x = sample();
        let cur = BlockFibers::build(&x, 2, 2).unwrap();
        assert_eq!(cur.num_chunks(), cur.tensor().num_blocks());
        // Chunks partition the fiber space in order.
        let mut next = 0;
        for c in 0..cur.num_chunks() {
            let r = cur.chunk_fibers(c);
            assert_eq!(r.start, next);
            next = r.end;
        }
        assert_eq!(next, FiberCursor::num_fibers(&cur));
        // Fibers partition the entry space in order.
        let mut seen = 0;
        for f in 0..FiberCursor::num_fibers(&cur) {
            let r = cur.fiber_entries(f);
            assert_eq!(r.start, seen);
            seen = r.end;
        }
        assert_eq!(seen, x.nnz());
    }

    #[test]
    fn exec_output_length_checked() {
        let x = sample();
        let cur = CooFibers::build(&x, 2).unwrap();
        let vv = vec![1.0; 6];
        let mut short = vec![0.0; 3];
        assert!(ttv_exec(&cur, &vv, &mut short, &Ctx::sequential()).is_err());
        let u = DenseMatrix::from_fn(6, 2, |i, j| (i + j) as f64);
        let mut wrong = vec![0.0; 5];
        assert!(ttm_exec(&cur, &u, &mut wrong, &Ctx::sequential()).is_err());
    }
}
