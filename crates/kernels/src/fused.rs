//! Fused kernel-chain executors: TTV∘TTV multi-mode products, the TTM
//! chains of a Tucker sweep, and the full CP-ALS sweep, each run in one
//! pass through per-thread [`workspace`](crate::workspace)s instead of
//! materializing and re-sorting intermediate sparse tensors.
//!
//! The three chain shapes (see [`FusedExprKind`](crate::pipeline::FusedExprKind)):
//!
//! ```text
//! ttvchain :=  X ×_{m₁} v₁ ×_{m₂} v₂ ⋯            (FusedTtvPlan)
//! ttmchain :=  X ×_{m≠skip} U_m                    (FusedTtmChainPlan)
//! alssweep :=  ∀n: solve(hadamard-grams, mttkrp(X, n)) → normalize
//!                                                  (FusedAlsSweep)
//! ```
//!
//! Since the expression-graph layer landed these are thin wrappers: each
//! plan validates its canned shape, then delegates evaluation to the
//! shared engine in [`expr`](crate::expr) — [`ContractionPlan`] for the
//! contraction chains, a lowered MTTKRP-head [`ExprPlan`]
//! for the ALS sweep. The wrapper keeps the historical API, error
//! messages, and counter semantics; the loops live in one place, so the
//! canned and planner-driven paths are bit-identical by construction.
//!
//! Each plan separates untimed preprocessing (one sort of a tensor copy,
//! fiber-run discovery, format conversion — all cached and reused across
//! decomposition sweeps) from the timed execute, matching the suite's
//! plan→execute convention. On the fused path no intermediate sparse
//! tensor is ever built: output fibers are runs of the sorted copy, every
//! worker accumulates into a dense scratch block per output fiber or a
//! hashed [`SparseAcc`](crate::pipeline::SparseAcc) (selected by
//! [`choose_workspace`]), and sparse accumulators merge through the
//! deterministic tree reduction. The `fused.*` counters of the unified
//! [`pasta_obs`] registry record what ran so benches and tests can assert
//! the no-materialization invariant.

use crate::analysis::Kernel;
use crate::expr::{lower, Bindings, ContractionPlan, ExprGraph, ExprOut, ExprPlan};
use crate::pipeline::{BackendKind, Ctx, FormatKind, KernelPlan};
use crate::workspace::{choose_workspace, WorkspaceKind};
use pasta_core::linalg::{gram, hadamard, normalize_columns, Cholesky};
use pasta_core::{CooTensor, DenseMatrix, DenseVector, Error, Result, SemiCooTensor, Shape, Value};
use pasta_obs::{counters, span_detail, CounterId};

/// A fused multi-mode TTV product `X ×_{m₁} v₁ ×_{m₂} v₂ ⋯` executed in
/// one pass — no intermediate order-(N−1) tensors, no re-sorts between
/// steps.
///
/// The plan sorts one copy of the tensor with the *kept* modes outermost,
/// so each output value is a contiguous run of input entries; execute
/// reduces each run with the product of the contracted vector gathers.
/// Evaluation delegates to the vector-only case of [`ContractionPlan`].
///
/// # Examples
///
/// ```
/// use pasta_core::{CooTensor, DenseVector, Shape};
/// use pasta_kernels::{fused::FusedTtvPlan, Ctx};
///
/// # fn main() -> Result<(), pasta_core::Error> {
/// let x = CooTensor::from_entries(
///     Shape::new(vec![2, 3, 4]),
///     vec![(vec![0, 1, 2], 2.0_f64), (vec![0, 2, 3], 5.0)],
/// )?;
/// let ctx = Ctx::sequential();
/// let plan = FusedTtvPlan::new(&x, &[1, 2], &ctx)?;
/// let v1 = DenseVector::from_vec(vec![1.0, 10.0, 100.0]);
/// let v2 = DenseVector::from_vec(vec![1.0, 1.0, 3.0, 7.0]);
/// let y = plan.execute(&[&v1, &v2], &ctx)?;
/// // y[0] = 2·10·3 + 5·100·7 = 3560
/// assert_eq!(y.get(&[0]), Some(3560.0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct FusedTtvPlan<V> {
    inner: ContractionPlan<V>,
}

impl<V: Value> FusedTtvPlan<V> {
    /// Plans the fused product contracting `contract` (distinct modes; at
    /// least one mode must remain). Sorts one tensor copy kept-modes-first.
    ///
    /// # Errors
    ///
    /// Rejects invalid/duplicate modes, contracting every mode, and
    /// unregistered routes.
    pub fn new(x: &CooTensor<V>, contract: &[usize], ctx: &Ctx) -> Result<Self> {
        KernelPlan::new(Kernel::Ttv, FormatKind::Coo, BackendKind::Cpu, ctx)?;
        let order = x.order();
        let mut contract = contract.to_vec();
        contract.sort_unstable();
        contract.dedup();
        if contract.is_empty() {
            return Err(Error::OperandMismatch { what: "no modes to contract".into() });
        }
        for &m in &contract {
            x.shape().check_mode(m)?;
        }
        if contract.len() >= order {
            return Err(Error::OperandMismatch {
                what: format!("contracting all {order} modes leaves no output mode"),
            });
        }
        let inner = ContractionPlan::new(x.clone(), &contract, &[], ctx)?;
        Ok(Self { inner })
    }

    /// The contracted modes, sorted ascending (vectors passed to execute
    /// align with this order).
    pub fn contracted_modes(&self) -> &[usize] {
        self.inner.vec_modes()
    }

    /// The number of output values (distinct kept-mode fibers).
    pub fn num_fibers(&self) -> usize {
        self.inner.num_fibers()
    }

    /// The output shape (kept-mode dimensions).
    pub fn out_shape(&self) -> Shape {
        self.inner.out_shape()
    }

    /// The timed value computation into a pre-allocated `out` of length
    /// [`Self::num_fibers`], with the workspace kind picked by
    /// [`choose_workspace`].
    ///
    /// # Errors
    ///
    /// Rejects vector count/length mismatches.
    pub fn execute_values(&self, vecs: &[&DenseVector<V>], out: &mut [V], ctx: &Ctx) -> Result<()> {
        let kind = choose_workspace(
            self.num_fibers(),
            1,
            self.inner.base().nnz(),
            ctx.threads,
            ctx.dense_threshold(),
        );
        self.execute_values_with(vecs, out, ctx, kind)
    }

    /// [`Self::execute_values`] with an explicit workspace kind: `Dense`
    /// runs owner-computes over the sorted fiber runs (each output value is
    /// its own scratch slot); `Sparse` privatizes a hashed accumulator per
    /// worker over even entry chunks and tree-merges.
    ///
    /// # Errors
    ///
    /// Rejects vector count/length mismatches.
    pub fn execute_values_with(
        &self,
        vecs: &[&DenseVector<V>],
        out: &mut [V],
        ctx: &Ctx,
        kind: WorkspaceKind,
    ) -> Result<()> {
        self.inner.execute_into(vecs, &[], out, ctx, kind)
    }

    /// Computes the full product as a COO tensor over the kept modes
    /// (pre-allocated pattern plus [`Self::execute_values`]).
    ///
    /// # Errors
    ///
    /// Rejects vector count/length mismatches.
    pub fn execute(&self, vecs: &[&DenseVector<V>], ctx: &Ctx) -> Result<CooTensor<V>> {
        let mut vals = vec![V::ZERO; self.num_fibers()];
        self.execute_values(vecs, &mut vals, ctx)?;
        self.inner.assemble_coo(vals)
    }
}

/// The fused TTM chain of a Tucker sweep: `Y = X ×_{m≠skip} U_m` in one
/// pass over the non-zeros.
///
/// The plan sorts one tensor copy mode-`skip`-outermost (cached by the
/// caller across HOOI sweeps, so the sort is paid once per run, not once
/// per chain step). Each distinct `i_skip` is one output fiber; per input
/// entry the executor expands `val · ⊗_{m≠skip} U_m[i_m, :]` iteratively
/// into a small scratch and adds it to the fiber's dense block — no
/// intermediate semi-sparse tensor, no `to_coo()` round-trips. Evaluation
/// delegates to the matrix-only case of [`ContractionPlan`].
///
/// With `skip == order` every mode is contracted and
/// [`execute_full`](Self::execute_full) produces the dense core directly.
#[derive(Debug)]
pub struct FusedTtmChainPlan<V> {
    inner: ContractionPlan<V>,
    skip: usize,
    order: usize,
}

impl<V: Value> FusedTtmChainPlan<V> {
    /// Plans the chain that contracts every mode except `skip` (pass
    /// `skip == order` to contract all modes).
    ///
    /// # Errors
    ///
    /// Rejects an out-of-range `skip` (beyond `order`), order-one tensors,
    /// and unregistered routes.
    pub fn new(x: &CooTensor<V>, skip: usize, ctx: &Ctx) -> Result<Self> {
        KernelPlan::new(Kernel::Ttm, FormatKind::Coo, BackendKind::Cpu, ctx)?;
        let order = x.order();
        if order < 2 {
            return Err(Error::InvalidMode { mode: skip, order });
        }
        if skip > order {
            return Err(Error::InvalidMode { mode: skip, order });
        }
        let cmodes: Vec<usize> = (0..order).filter(|&m| m != skip).collect();
        let inner = ContractionPlan::new(x.clone(), &[], &cmodes, ctx)?;
        Ok(Self { inner, skip, order })
    }

    /// The skipped (kept-sparse) mode; `order` means full contraction.
    pub fn skip(&self) -> usize {
        self.skip
    }

    /// The number of output fibers (distinct `i_skip` values); zero when
    /// the plan contracts every mode.
    pub fn num_fibers(&self) -> usize {
        self.inner.num_fibers()
    }

    fn check_factors(&self, factors: &[DenseMatrix<V>]) -> Result<usize> {
        let order = self.order;
        if factors.len() != order {
            return Err(Error::OperandMismatch {
                what: format!("expected {order} factor matrices, got {}", factors.len()),
            });
        }
        let mut dvol = 1usize;
        for (m, u) in factors.iter().enumerate() {
            if m == self.skip {
                continue;
            }
            if u.rows() != self.inner.base().shape().dim(m) as usize {
                return Err(Error::OperandMismatch {
                    what: format!(
                        "factor {m} has {} rows but mode {m} has dimension {}",
                        u.rows(),
                        self.inner.base().shape().dim(m)
                    ),
                });
            }
            if u.cols() == 0 {
                return Err(Error::OperandMismatch {
                    what: format!("factor {m} has rank 0; rank must be at least 1"),
                });
            }
            dvol *= u.cols();
        }
        Ok(dvol)
    }

    /// The execute matrices in contracted-mode order (ascending non-skip).
    fn contract_mats<'f>(&self, factors: &'f [DenseMatrix<V>]) -> Vec<&'f DenseMatrix<V>> {
        self.inner.mat_modes().iter().map(|&m| &factors[m]).collect()
    }

    /// Executes the chain as a semi-sparse tensor: sparse mode `skip`,
    /// dense modes everywhere else (one `∏R_m` block per distinct
    /// `i_skip`), with the workspace kind picked by [`choose_workspace`].
    ///
    /// # Errors
    ///
    /// Rejects factor mismatches and full-contraction plans (use
    /// [`Self::execute_full`]).
    pub fn execute(&self, factors: &[DenseMatrix<V>], ctx: &Ctx) -> Result<SemiCooTensor<V>> {
        let dvol = self.check_factors(factors)?;
        let kind = choose_workspace(
            self.num_fibers(),
            dvol,
            self.inner.base().nnz(),
            ctx.threads,
            ctx.dense_threshold(),
        );
        self.execute_with(factors, ctx, kind)
    }

    /// [`Self::execute`] with an explicit workspace kind: `Dense` runs
    /// owner-computes over the sorted fiber runs, writing each output
    /// block directly; `Sparse` privatizes a hashed accumulator keyed by
    /// output fiber per worker and tree-merges.
    ///
    /// # Errors
    ///
    /// Rejects factor mismatches and full-contraction plans.
    pub fn execute_with(
        &self,
        factors: &[DenseMatrix<V>],
        ctx: &Ctx,
        kind: WorkspaceKind,
    ) -> Result<SemiCooTensor<V>> {
        let dvol = self.check_factors(factors)?;
        if self.skip >= self.order {
            return Err(Error::InvalidMode { mode: self.skip, order: self.order });
        }
        let mats = self.contract_mats(factors);
        let mut vals = vec![V::ZERO; self.num_fibers() * dvol];
        self.inner.execute_into(&[], &mats, &mut vals, ctx, kind)?;
        self.inner.assemble_semi(vals, &mats)
    }

    /// Executes a full-contraction chain (`skip == order`) straight to the
    /// dense core, row-major over the factor ranks in mode order — the
    /// `to_coo()`/`to_dense()` round-trip of the unfused chain disappears.
    ///
    /// # Errors
    ///
    /// Rejects factor mismatches and partial-contraction plans (use
    /// [`Self::execute`]).
    pub fn execute_full(&self, factors: &[DenseMatrix<V>], ctx: &Ctx) -> Result<Vec<V>> {
        self.check_factors(factors)?;
        if self.skip < self.order {
            return Err(Error::InvalidMode { mode: self.skip, order: self.order });
        }
        self.inner.execute_full(&[], &self.contract_mats(factors), ctx)
    }
}

/// One fused CP-ALS sweep: MTTKRP → Hadamard-of-Grams → Cholesky solve →
/// normalize for every mode, with the sweep-invariant products cached
/// across iterations.
///
/// The per-run MTTKRP state is a lowered expression plan — a one-edge
/// graph `mttkrp(leaf)` run through [`lower`], whose head caches the
/// per-mode [`MttkrpCooPlan`](crate::mttkrp::MttkrpCooPlan)s (built only
/// where the schedule analysis says a mode-outermost re-sort pays off) or
/// the one-time HiCOO conversion. Arithmetic is bit-identical to the
/// kernel-at-a-time loop — the wins come from *not redoing work*:
///
/// - per-mode MTTKRP plans and conversions are built once per run instead
///   of once per sweep;
/// - factor Gram matrices are cached and updated incrementally — one
///   `gram()` per factor update instead of `N−1` per mode plus `N` more
///   for the fit, collapsing `O(N²)` Gram computations per sweep to
///   `O(N)`.
#[derive(Debug)]
pub struct FusedAlsSweep<'a, V> {
    x: &'a CooTensor<V>,
    format: FormatKind,
    plan: ExprPlan<'a, V>,
    grams: Vec<DenseMatrix<V>>,
    rank: usize,
}

impl<'a, V: Value> FusedAlsSweep<'a, V> {
    /// Builds the per-run plan: validates the factor set, lowers the
    /// MTTKRP expression graph (which validates the route against the
    /// registry and converts/sorts as the schedule analysis dictates), and
    /// seeds the Gram cache from the initial factors.
    ///
    /// # Errors
    ///
    /// Rejects unregistered routes, non-COO/HiCOO formats, and factor
    /// shape mismatches.
    pub fn new(
        x: &'a CooTensor<V>,
        format: FormatKind,
        block: u32,
        factors: &[DenseMatrix<V>],
        ctx: &Ctx,
    ) -> Result<Self> {
        let order = x.order();
        if factors.len() != order {
            return Err(Error::OperandMismatch {
                what: format!("expected {order} factor matrices, got {}", factors.len()),
            });
        }
        let rank = factors[0].cols();
        for (m, f) in factors.iter().enumerate() {
            if f.cols() != rank || f.rows() != x.shape().dim(m) as usize {
                return Err(Error::OperandMismatch {
                    what: format!(
                        "factor {m} is {}×{} but mode {m} needs {}×{rank}",
                        f.rows(),
                        f.cols(),
                        x.shape().dim(m)
                    ),
                });
            }
        }
        let mut g = ExprGraph::new();
        let leaf = g.leaf(x);
        let root = g.mttkrp(leaf, rank, format, block)?;
        let plan = lower(&g, root, ctx)?;
        let grams = factors.iter().map(gram).collect();
        Ok(Self { x, format, plan, grams, rank })
    }

    /// The decomposition rank `R`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Runs one ALS sweep in place: for each mode, MTTKRP against the
    /// cached plan, solve against the cached Grams, normalize, and update
    /// the mode's Gram.
    ///
    /// # Errors
    ///
    /// Propagates kernel errors; fails when the Gram Hadamard product is
    /// not positive definite.
    pub fn sweep(&mut self, factors: &mut [DenseMatrix<V>], lambda: &mut [V]) -> Result<()> {
        let order = self.x.order();
        let c = counters();
        c.add(CounterId::FusedChains, 1);
        let _span = span_detail(
            "kernel",
            "fused.als_sweep",
            self.format.label(),
            self.x.nnz() as u64,
            self.rank as u64,
            0,
        );
        for n in 0..order {
            let m_out = match self.plan.execute(&Bindings::mttkrp(factors, n))? {
                ExprOut::Matrix(m) => m,
                _ => unreachable!("mttkrp graphs produce matrices"),
            };
            // V = hadamard of the cached grams of all factors but n, folded
            // in increasing mode order (bit-identical to recomputing each
            // gram in the kernel-at-a-time loop).
            let mut v: Option<DenseMatrix<V>> = None;
            for m in 0..order {
                if m == n {
                    continue;
                }
                c.add(CounterId::FusedPlanCacheHits, 1);
                v = Some(match v {
                    Some(acc) => hadamard(&acc, &self.grams[m]),
                    None => self.grams[m].clone(),
                });
            }
            let v = v.expect("order >= 2");
            let ridge = V::from_f64(1e-10);
            let ch = Cholesky::factor(&v, ridge).ok_or_else(|| Error::OperandMismatch {
                what: "gram Hadamard product not positive definite".into(),
            })?;
            let mut a = m_out;
            ch.solve_rows(&mut a);
            let norms = normalize_columns(&mut a);
            for (l, nn) in lambda.iter_mut().zip(&norms) {
                *l = if *nn == V::ZERO { V::ZERO } else { *nn };
            }
            self.grams[n] = gram(&a);
            factors[n] = a;
        }
        Ok(())
    }

    /// The Hadamard product of *all* cached Grams (`∘_m A_mᵀA_m`), folded
    /// in mode order — the model-norm term of the fit computation, reusing
    /// the sweep's cache instead of recomputing every Gram.
    pub fn gram_hadamard(&self) -> DenseMatrix<V> {
        let c = counters();
        let mut had: Option<DenseMatrix<V>> = None;
        for g in &self.grams {
            c.add(CounterId::FusedPlanCacheHits, 1);
            had = Some(match had {
                Some(acc) => hadamard(&acc, g),
                None => g.clone(),
            });
        }
        had.expect("at least one factor")
    }

    /// Which format backend the sweep drives.
    pub fn format(&self) -> FormatKind {
        self.format
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ttv_coo;
    use crate::{mttkrp_coo, ttm_coo, ttm_scoo};
    use pasta_core::{seeded_vector, Coord};
    use pasta_par::Schedule;

    fn test_tensor(dims: &[u32], nnz: usize, seed: u64) -> CooTensor<f64> {
        let shape = Shape::new(dims.to_vec());
        let mut x = CooTensor::new(shape);
        let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        for _ in 0..nnz {
            let coords: Vec<Coord> = dims.iter().map(|&d| (next() % d as u64) as Coord).collect();
            let v = (next() % 1000) as f64 / 100.0 - 5.0;
            x.push(&coords, v).unwrap();
        }
        x.dedup_sum();
        x
    }

    #[test]
    fn fused_ttv_matches_composed_kernels() {
        let x = test_tensor(&[7, 6, 5, 4], 160, 3);
        let ctx = Ctx::sequential();
        let vecs: Vec<DenseVector<f64>> = vec![seeded_vector(6, 11), seeded_vector(4, 12)];
        let plan = FusedTtvPlan::new(&x, &[1, 3], &ctx).unwrap();
        let fused = plan.execute(&[&vecs[0], &vecs[1]], &ctx).unwrap();
        // Composed: contract mode 3 first (indices above stay put), then 1.
        let step = ttv_coo(&x, &vecs[1], 3, &ctx).unwrap();
        let composed = ttv_coo(&step, &vecs[0], 1, &ctx).unwrap();
        let df = fused.to_dense(1 << 12);
        let dc = composed.to_dense(1 << 12);
        for (a, b) in df.iter().zip(&dc) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn ttv_dense_and_sparse_workspaces_agree() {
        let x = test_tensor(&[9, 8, 7], 200, 5);
        let v = seeded_vector::<f64>(7, 21);
        for threads in [1usize, 2, 4] {
            let ctx = Ctx::new(threads, Schedule::Static);
            let plan = FusedTtvPlan::new(&x, &[2], &ctx).unwrap();
            let mut dense = vec![0.0; plan.num_fibers()];
            let mut sparse = vec![0.0; plan.num_fibers()];
            plan.execute_values_with(&[&v], &mut dense, &ctx, WorkspaceKind::Dense).unwrap();
            plan.execute_values_with(&[&v], &mut sparse, &ctx, WorkspaceKind::Sparse).unwrap();
            for (a, b) in dense.iter().zip(&sparse) {
                assert!((a - b).abs() < 1e-9, "t={threads}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn fused_ttm_chain_matches_kernel_at_a_time() {
        let x = test_tensor(&[6, 5, 4], 80, 9);
        let ctx = Ctx::sequential();
        let factors: Vec<DenseMatrix<f64>> = vec![
            pasta_core::seeded_matrix(6, 3, 1),
            pasta_core::seeded_matrix(5, 2, 2),
            pasta_core::seeded_matrix(4, 2, 3),
        ];
        for skip in 0..3usize {
            let plan = FusedTtmChainPlan::new(&x, skip, &ctx).unwrap();
            for kind in [WorkspaceKind::Dense, WorkspaceKind::Sparse] {
                let fused = plan.execute_with(&factors, &ctx, kind).unwrap();
                // Kernel-at-a-time: ttm_coo then ttm_scoo per remaining mode.
                let mut semi = None;
                for (m, u) in factors.iter().enumerate() {
                    if m == skip {
                        continue;
                    }
                    semi = Some(match semi {
                        None => ttm_coo(&x, u, m, &ctx).unwrap(),
                        Some(prev) => ttm_scoo(&prev, u, m, &ctx).unwrap(),
                    });
                }
                let want = semi.unwrap().to_coo().to_dense(1 << 12);
                let got = fused.to_coo().to_dense(1 << 12);
                assert_eq!(got.len(), want.len());
                for (a, b) in got.iter().zip(&want) {
                    assert!((a - b).abs() < 1e-9, "skip={skip} {kind}: {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn execute_full_contracts_every_mode() {
        let x = test_tensor(&[5, 4, 3], 40, 13);
        let ctx = Ctx::sequential();
        let factors: Vec<DenseMatrix<f64>> = vec![
            pasta_core::seeded_matrix(5, 2, 4),
            pasta_core::seeded_matrix(4, 2, 5),
            pasta_core::seeded_matrix(3, 2, 6),
        ];
        let plan = FusedTtmChainPlan::new(&x, 3, &ctx).unwrap();
        let core = plan.execute_full(&factors, &ctx).unwrap();
        assert_eq!(core.len(), 8);
        // Reference: chain two ttm_coo products then contract the last
        // mode by hand against the dense expansion.
        let mut want = vec![0.0f64; 8];
        for e in 0..x.nnz() {
            let v = x.vals()[e];
            for r0 in 0..2 {
                for r1 in 0..2 {
                    for r2 in 0..2 {
                        want[r0 * 4 + r1 * 2 + r2] += v
                            * factors[0].get(x.mode_inds(0)[e] as usize, r0)
                            * factors[1].get(x.mode_inds(1)[e] as usize, r1)
                            * factors[2].get(x.mode_inds(2)[e] as usize, r2);
                    }
                }
            }
        }
        for (a, b) in core.iter().zip(&want) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn fused_path_materializes_nothing() {
        let x = test_tensor(&[8, 7, 6], 120, 17);
        let ctx = Ctx::sequential();
        let factors: Vec<DenseMatrix<f64>> = vec![
            pasta_core::seeded_matrix(8, 2, 1),
            pasta_core::seeded_matrix(7, 2, 2),
            pasta_core::seeded_matrix(6, 2, 3),
        ];
        pasta_obs::set_counting(true);
        let before = counters().snapshot();
        let plan = FusedTtmChainPlan::new(&x, 0, &ctx).unwrap();
        let _ = plan.execute(&factors, &ctx).unwrap();
        let after = counters().snapshot();
        assert_eq!(after[CounterId::FusedMaterialized], before[CounterId::FusedMaterialized]);
        assert!(after[CounterId::FusedEntries] >= before[CounterId::FusedEntries] + x.nnz() as u64);
        assert!(after[CounterId::FusedChains] > before[CounterId::FusedChains]);
    }

    #[test]
    fn als_sweep_matches_kernel_at_a_time_loop() {
        let x = test_tensor(&[6, 5, 4], 60, 23);
        let ctx = Ctx::sequential();
        let r = 3;
        let init: Vec<DenseMatrix<f64>> = (0..3)
            .map(|m| {
                let mut f = pasta_core::seeded_matrix(x.shape().dim(m) as usize, r, 100 + m as u64);
                normalize_columns(&mut f);
                f
            })
            .collect();
        // Fused sweep.
        let mut fused_factors = init.clone();
        let mut fused_lambda = vec![1.0f64; r];
        let mut sweep = FusedAlsSweep::new(&x, FormatKind::Coo, 0, &init, &ctx).unwrap();
        sweep.sweep(&mut fused_factors, &mut fused_lambda).unwrap();
        // Reference: the kernel-at-a-time loop, grams recomputed each time.
        let mut factors = init;
        let mut lambda = vec![1.0f64; r];
        for n in 0..3 {
            let m_out = mttkrp_coo(&x, &factors, n, &ctx).unwrap();
            let mut v: Option<DenseMatrix<f64>> = None;
            for (m, f) in factors.iter().enumerate() {
                if m == n {
                    continue;
                }
                let g = gram(f);
                v = Some(match v {
                    Some(acc) => hadamard(&acc, &g),
                    None => g,
                });
            }
            let ch = Cholesky::factor(&v.unwrap(), 1e-10).unwrap();
            let mut a = m_out;
            ch.solve_rows(&mut a);
            let norms = normalize_columns(&mut a);
            for (l, nn) in lambda.iter_mut().zip(&norms) {
                *l = if *nn == 0.0 { 0.0 } else { *nn };
            }
            factors[n] = a;
        }
        for (fa, ra) in fused_factors.iter().zip(&factors) {
            for (a, b) in fa.as_slice().iter().zip(ra.as_slice()) {
                assert_eq!(a, b, "fused sweep must be bit-identical");
            }
        }
        assert_eq!(fused_lambda, lambda);
    }

    #[test]
    fn als_sweep_rejects_bad_routes() {
        let x = test_tensor(&[4, 4], 10, 1);
        let ctx = Ctx::sequential();
        let f: Vec<DenseMatrix<f64>> = (0..2).map(|m| pasta_core::seeded_matrix(4, 2, m)).collect();
        assert!(FusedAlsSweep::new(&x, FormatKind::Scoo, 0, &f, &ctx).is_err());
        assert!(FusedAlsSweep::new(&x, FormatKind::Coo, 0, &f[..1], &ctx).is_err());
    }

    #[test]
    fn ttv_plan_rejects_bad_modes() {
        let x = test_tensor(&[4, 4, 4], 10, 1);
        let ctx = Ctx::sequential();
        assert!(FusedTtvPlan::new(&x, &[], &ctx).is_err());
        assert!(FusedTtvPlan::new(&x, &[3], &ctx).is_err());
        assert!(FusedTtvPlan::new(&x, &[0, 1, 2], &ctx).is_err());
    }
}
