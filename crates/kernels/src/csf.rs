//! CSF-based kernels — the paper's declared next step ("data
//! representations, such as compressed sparse fiber (CSF)").
//!
//! CSF's tree factors out shared index prefixes, so MTTKRP can hoist
//! partial Hadamard products up the tree (SPLATT's key trick): the root-mode
//! MTTKRP performs `2 M R + 2 F R` flops instead of COO's `3 M R`, where
//! `F` is the number of internal nodes. TTV in the leaf mode reduces each
//! leaf run with a single dot product.

use crate::fibers::ttv_exec;
use crate::pipeline::Ctx;
use pasta_core::{
    CooTensor, Coord, CsfTensor, DenseMatrix, DenseVector, Error, FiberCursor, Result, Shape, Value,
};
use pasta_par::{parallel_for, SharedSlice};

fn check_csf_factors<V: Value>(x: &CsfTensor<V>, factors: &[DenseMatrix<V>]) -> Result<usize> {
    if factors.len() != x.order() {
        return Err(Error::OperandMismatch {
            what: format!("expected {} factor matrices, got {}", x.order(), factors.len()),
        });
    }
    let r = factors[0].cols();
    if r == 0 {
        return Err(Error::OperandMismatch { what: "rank must be at least 1".into() });
    }
    for (m, f) in factors.iter().enumerate() {
        if f.cols() != r || f.rows() != x.shape().dim(m) as usize {
            return Err(Error::OperandMismatch { what: format!("factor {m} shape mismatch") });
        }
    }
    Ok(r)
}

/// CSF-MTTKRP in the tree's *root* mode (`x.mode_order()[0]`).
///
/// Parallelizes over root nodes; since every root owns a distinct output
/// row, no atomics are needed — the structural advantage over COO-MTTKRP.
///
/// # Errors
///
/// Returns [`Error::OperandMismatch`] for inconsistent factors.
///
/// # Examples
///
/// ```
/// use pasta_core::{CooTensor, CsfTensor, DenseMatrix, Shape};
/// use pasta_kernels::{csf::mttkrp_csf_root, Ctx};
///
/// # fn main() -> Result<(), pasta_core::Error> {
/// let coo = CooTensor::from_entries(
///     Shape::new(vec![2, 2, 2]),
///     vec![(vec![1, 0, 1], 2.0_f32)],
/// )?;
/// let csf = CsfTensor::from_coo(&coo, &[0, 1, 2])?;
/// let ones = DenseMatrix::from_fn(2, 3, |_, _| 1.0_f32);
/// let out = mttkrp_csf_root(&csf, &[ones.clone(), ones.clone(), ones], &Ctx::sequential())?;
/// assert_eq!(out.row(1), &[2.0, 2.0, 2.0]);
/// # Ok(())
/// # }
/// ```
pub fn mttkrp_csf_root<V: Value>(
    x: &CsfTensor<V>,
    factors: &[DenseMatrix<V>],
    ctx: &Ctx,
) -> Result<DenseMatrix<V>> {
    let r = check_csf_factors(x, factors)?;
    let root_mode = x.mode_order()[0];
    let rows = x.shape().dim(root_mode) as usize;
    let mut out = DenseMatrix::zeros(rows, r);
    if x.nnz() == 0 {
        return Ok(out);
    }
    let roots = x.level_size(0);
    let shared = SharedSlice::new(out.as_mut_slice());
    parallel_for(roots, ctx.threads, ctx.schedule, |range| {
        let mut scratch: Vec<Vec<V>> = vec![vec![V::ZERO; r]; x.order()];
        for i in range {
            let mut acc = vec![V::ZERO; r];
            for c in x.children(0, i) {
                subtree(x, factors, 1, c, r, &mut scratch);
                for (a, &s) in acc.iter_mut().zip(&scratch[1]) {
                    *a += s;
                }
            }
            let row_idx = x.fids(0)[i] as usize;
            // SAFETY: root fids are distinct, so output rows are disjoint.
            let row = unsafe { shared.slice_mut(row_idx * r..(row_idx + 1) * r) };
            for (o, &a) in row.iter_mut().zip(&acc) {
                *o += a;
            }
        }
    });
    Ok(out)
}

/// Accumulates the rank-`r` contribution of the subtree rooted at node
/// `node` of level `l` into `scratch[l]`.
fn subtree<V: Value>(
    x: &CsfTensor<V>,
    factors: &[DenseMatrix<V>],
    l: usize,
    node: usize,
    r: usize,
    scratch: &mut [Vec<V>],
) {
    let order = x.order();
    let mode = x.mode_order()[l];
    if l == order - 1 {
        // Leaf: val * U^{leaf mode}(k, :).
        let k = x.fids(l)[node] as usize;
        let val = x.vals()[node];
        let row = factors[mode].row(k);
        for (s, &u) in scratch[l].iter_mut().zip(row) {
            *s = val * u;
        }
        return;
    }
    // Internal: (sum of children) ∘ U^{mode}(fid, :).
    let mut acc = vec![V::ZERO; r];
    for c in x.children(l, node) {
        subtree(x, factors, l + 1, c, r, scratch);
        for (a, &s) in acc.iter_mut().zip(&scratch[l + 1]) {
            *a += s;
        }
    }
    let fid = x.fids(l)[node] as usize;
    let row = factors[mode].row(fid);
    for ((s, &a), &u) in scratch[l].iter_mut().zip(&acc).zip(row) {
        *s = a * u;
    }
}

/// Pre-processed state for CSF-TTV in the tree's *leaf* mode: the tensor
/// (whose leaf runs are already fiber-contiguous), the output shape and
/// the per-parent output coordinates.
///
/// Implements [`FiberCursor`]: each second-to-last-level node is one fiber
/// *and* one chunk, its children range is the fiber's entries, and the
/// leaf fids index the contracted vector — so the timed kernel is the same
/// generic [`ttv_exec`] the COO and HiCOO plans use, and the bespoke CSF
/// driver is gone.
#[derive(Debug, Clone)]
pub struct CsfTtvPlan<V> {
    x: CsfTensor<V>,
    leaf_mode: usize,
    parents: usize,
    out_shape: Shape,
    out_inds: Vec<Vec<Coord>>,
}

impl<V: Value> CsfTtvPlan<V> {
    /// Builds the plan: walks the tree once to pre-compute each parent's
    /// output coordinates (all modes except the leaf).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidMode`] for a first-order tensor.
    pub fn new(x: &CsfTensor<V>) -> Result<Self> {
        let order = x.order();
        if order < 2 {
            return Err(Error::InvalidMode { mode: 0, order });
        }
        let leaf_mode = *x.mode_order().last().expect("order >= 2");
        let out_shape = x.shape().remove_mode(leaf_mode);
        let parents = if x.nnz() == 0 { 0 } else { x.level_size(order - 2) };

        // Pre-compute each parent's full coordinate path (pre-processing).
        let mut paths: Vec<Vec<Coord>> = vec![vec![0; order - 1]; parents];
        if parents > 0 {
            // Walk the tree to fill coordinates for the first N-1 levels.
            fn fill<V: Value>(
                x: &CsfTensor<V>,
                l: usize,
                range: std::ops::Range<usize>,
                prefix: &mut Vec<(usize, Coord)>,
                paths: &mut [Vec<Coord>],
            ) {
                let order = x.order();
                for i in range {
                    prefix.push((x.mode_order()[l], x.fids(l)[i]));
                    if l == order - 2 {
                        // Record the output coordinates (all modes except
                        // leaf), in increasing mode order with the leaf mode
                        // removed.
                        let leaf_mode = x.mode_order()[order - 1];
                        let mut coords: Vec<(usize, Coord)> = prefix.clone();
                        coords.sort_by_key(|&(m, _)| m);
                        paths[i] = coords
                            .into_iter()
                            .map(|(m, c)| if m > leaf_mode { (m - 1, c) } else { (m, c) })
                            .map(|(_, c)| c)
                            .collect();
                    } else {
                        fill(x, l + 1, x.children(l, i), prefix, paths);
                    }
                    prefix.pop();
                }
            }
            let mut prefix = Vec::new();
            fill(x, 0, 0..x.level_size(0), &mut prefix, &mut paths);
        }

        let mut out_inds: Vec<Vec<Coord>> = vec![Vec::with_capacity(parents); order - 1];
        for path in &paths {
            for (m, col) in out_inds.iter_mut().enumerate() {
                col.push(path[m]);
            }
        }
        Ok(Self { x: x.clone(), leaf_mode, parents, out_shape, out_inds })
    }

    /// The contracted (leaf) mode.
    pub fn mode(&self) -> usize {
        self.leaf_mode
    }

    /// The number of output non-zeros (second-to-last-level nodes).
    pub fn num_fibers(&self) -> usize {
        self.parents
    }

    /// The CSF input tensor.
    pub fn tensor(&self) -> &CsfTensor<V> {
        &self.x
    }

    /// The timed kernel: one dot product per parent, parallel over parents
    /// — [`ttv_exec`] over this plan's cursor.
    ///
    /// # Errors
    ///
    /// Returns an error on operand size mismatches.
    pub fn execute_values(&self, v: &DenseVector<V>, out: &mut [V], ctx: &Ctx) -> Result<()> {
        if v.len() != self.x.shape().dim(self.leaf_mode) as usize {
            return Err(Error::OperandMismatch {
                what: format!(
                    "vector length {} vs mode dim {}",
                    v.len(),
                    self.x.shape().dim(self.leaf_mode)
                ),
            });
        }
        ttv_exec(self, v.as_slice(), out, ctx)
    }

    /// Computes `Y = X ×_leaf v` as a COO tensor.
    ///
    /// # Errors
    ///
    /// As for [`Self::execute_values`].
    pub fn execute(&self, v: &DenseVector<V>, ctx: &Ctx) -> Result<CooTensor<V>> {
        let mut vals = vec![V::ZERO; self.parents];
        self.execute_values(v, &mut vals, ctx)?;
        CooTensor::from_parts(self.out_shape.clone(), self.out_inds.clone(), vals)
    }
}

impl<V: Value> FiberCursor<V> for CsfTtvPlan<V> {
    fn num_chunks(&self) -> usize {
        self.parents
    }

    fn num_fibers(&self) -> usize {
        self.parents
    }

    fn chunk_fibers(&self, chunk: usize) -> std::ops::Range<usize> {
        chunk..chunk + 1
    }

    fn fiber_entries(&self, fiber: usize) -> std::ops::Range<usize> {
        self.x.children(self.x.order() - 2, fiber)
    }

    fn contract_inds(&self) -> &[Coord] {
        if self.parents == 0 {
            &[]
        } else {
            self.x.fids(self.x.order() - 1)
        }
    }

    fn entry_vals(&self) -> &[V] {
        self.x.vals()
    }
}

/// One-shot CSF-TTV in the tree's *leaf* mode (`x.mode_order().last()`):
/// each second-to-last node's leaf run collapses into one output non-zero
/// via a dot product with `v` ([`CsfTtvPlan`] + execute).
///
/// # Errors
///
/// Returns an error for a mismatched vector length or a first-order tensor.
pub fn ttv_csf_leaf<V: Value>(
    x: &CsfTensor<V>,
    v: &DenseVector<V>,
    ctx: &Ctx,
) -> Result<CooTensor<V>> {
    CsfTtvPlan::new(x)?.execute(v, ctx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense_ref::{dense_approx_eq, mttkrp_dense, ttv_dense};
    use pasta_core::{seeded_matrix, seeded_vector, Shape};

    fn sample() -> CooTensor<f64> {
        CooTensor::from_entries(
            Shape::new(vec![4, 5, 6]),
            vec![
                (vec![0, 0, 0], 1.0),
                (vec![0, 0, 5], 2.0),
                (vec![1, 2, 3], 3.0),
                (vec![3, 4, 1], 4.0),
                (vec![3, 4, 2], 5.0),
                (vec![2, 1, 0], -1.0),
            ],
        )
        .unwrap()
    }

    fn factors_for(x: &CooTensor<f64>, r: usize) -> Vec<DenseMatrix<f64>> {
        (0..x.order()).map(|m| seeded_matrix(x.shape().dim(m) as usize, r, 31 + m as u64)).collect()
    }

    #[test]
    fn csf_mttkrp_matches_dense_every_root_mode() {
        let x = sample();
        let fs = factors_for(&x, 4);
        for n in 0..3 {
            // Build the CSF rooted at mode n (other modes in natural order).
            let mut order: Vec<usize> = vec![n];
            order.extend((0..3).filter(|&m| m != n));
            let csf = CsfTensor::from_coo(&x, &order).unwrap();
            let got = mttkrp_csf_root(&csf, &fs, &Ctx::sequential()).unwrap();
            let want = mttkrp_dense(&x, &fs, n).unwrap();
            assert!(dense_approx_eq(got.as_slice(), want.as_slice(), 1e-10), "root mode {n}");
        }
    }

    #[test]
    fn csf_mttkrp_parallel_matches_sequential() {
        let entries: Vec<(Vec<Coord>, f64)> = (0..5000u32)
            .map(|i| (vec![i % 50, (i / 50) % 40, (i * 3) % 60], (i as f64).sin()))
            .collect();
        let mut x = CooTensor::from_entries(Shape::new(vec![50, 40, 60]), entries).unwrap();
        x.dedup_sum();
        let fs = factors_for(&x, 8);
        let csf = CsfTensor::from_coo(&x, &[0, 1, 2]).unwrap();
        let seq = mttkrp_csf_root(&csf, &fs, &Ctx::sequential()).unwrap();
        let par =
            mttkrp_csf_root(&csf, &fs, &Ctx::new(8, pasta_par::Schedule::Dynamic(8))).unwrap();
        assert!(dense_approx_eq(seq.as_slice(), par.as_slice(), 1e-10));
    }

    #[test]
    fn csf_mttkrp_matches_coo_kernel() {
        let x = sample();
        let fs = factors_for(&x, 3);
        let csf = CsfTensor::from_coo(&x, &[1, 0, 2]).unwrap();
        let got = mttkrp_csf_root(&csf, &fs, &Ctx::sequential()).unwrap();
        let via_coo = crate::mttkrp::mttkrp_coo(&x, &fs, 1, &Ctx::sequential()).unwrap();
        assert!(dense_approx_eq(got.as_slice(), via_coo.as_slice(), 1e-10));
    }

    #[test]
    fn csf_ttv_matches_dense() {
        let x = sample();
        for leaf in 0..3 {
            let mut order: Vec<usize> = (0..3).filter(|&m| m != leaf).collect();
            order.push(leaf);
            let csf = CsfTensor::from_coo(&x, &order).unwrap();
            let v = seeded_vector::<f64>(x.shape().dim(leaf) as usize, 5);
            let got = ttv_csf_leaf(&csf, &v, &Ctx::sequential()).unwrap();
            let (shape, want) = ttv_dense(&x, &v, leaf).unwrap();
            assert_eq!(got.shape(), &shape, "leaf {leaf}");
            assert!(dense_approx_eq(&got.to_dense(1 << 12), &want, 1e-10), "leaf {leaf}");
        }
    }

    #[test]
    fn fourth_order_csf_kernels() {
        let x = CooTensor::<f64>::from_entries(
            Shape::new(vec![3, 4, 3, 5]),
            vec![
                (vec![0, 1, 2, 0], 1.5),
                (vec![0, 1, 2, 4], 2.0),
                (vec![2, 2, 2, 1], -3.0),
                (vec![1, 3, 0, 2], 0.5),
            ],
        )
        .unwrap();
        let fs = factors_for(&x, 4);
        let csf = CsfTensor::from_coo(&x, &[2, 0, 1, 3]).unwrap();
        let got = mttkrp_csf_root(&csf, &fs, &Ctx::sequential()).unwrap();
        let want = mttkrp_dense(&x, &fs, 2).unwrap();
        assert!(dense_approx_eq(got.as_slice(), want.as_slice(), 1e-10));

        let v = seeded_vector::<f64>(5, 5);
        let got = ttv_csf_leaf(&csf, &v, &Ctx::sequential()).unwrap();
        let (_, want) = ttv_dense(&x, &v, 3).unwrap();
        assert!(dense_approx_eq(&got.to_dense(1 << 10), &want, 1e-10));
    }

    #[test]
    fn validation() {
        let x = sample();
        let csf = CsfTensor::from_coo(&x, &[0, 1, 2]).unwrap();
        let fs = factors_for(&x, 3);
        assert!(mttkrp_csf_root(&csf, &fs[..2], &Ctx::sequential()).is_err());
        let bad = seeded_vector::<f64>(3, 1);
        assert!(ttv_csf_leaf(&csf, &bad, &Ctx::sequential()).is_err());
    }

    #[test]
    fn empty_csf_kernels() {
        let x = CooTensor::<f64>::new(Shape::new(vec![3, 3, 3]));
        let csf = CsfTensor::from_coo(&x, &[0, 1, 2]).unwrap();
        let fs = factors_for(&x, 2);
        let out = mttkrp_csf_root(&csf, &fs, &Ctx::sequential()).unwrap();
        assert!(out.as_slice().iter().all(|&v| v == 0.0));
        let v = seeded_vector::<f64>(3, 1);
        assert_eq!(ttv_csf_leaf(&csf, &v, &Ctx::sequential()).unwrap().nnz(), 0);
    }
}
