//! Kernel execution context: thread count, scheduling strategy, and the
//! MTTKRP strategy override plus its per-strategy instrumentation counters.

use pasta_par::Schedule;
use std::sync::atomic::{AtomicU64, Ordering};

/// Which contention-free MTTKRP schedule to use (see
/// [`choose_mttkrp_strategy`](crate::analysis::choose_mttkrp_strategy)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StrategyChoice {
    /// Let the cost model pick (the default).
    #[default]
    Auto,
    /// Force owner-computes (fiber-aligned non-zero ranges; falls back to
    /// privatization if the mode-`n` indices are not non-decreasing).
    Owner,
    /// Force privatized reduction (per-worker accumulators + tree merge).
    Privatized,
}

/// How a kernel should execute: worker count and loop schedule.
///
/// # Examples
///
/// ```
/// use pasta_kernels::Ctx;
/// use pasta_par::Schedule;
///
/// let seq = Ctx::sequential();
/// assert_eq!(seq.threads, 1);
/// let par = Ctx::new(8, Schedule::Static);
/// assert_eq!(par.threads, 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ctx {
    /// Number of worker threads (1 = sequential).
    pub threads: usize,
    /// Loop scheduling strategy for the parallel loops.
    pub schedule: Schedule,
    /// MTTKRP scheduling strategy (default: cost-model auto-selection).
    pub mttkrp: StrategyChoice,
}

impl Ctx {
    /// A context with explicit thread count and schedule.
    pub fn new(threads: usize, schedule: Schedule) -> Self {
        Self { threads: threads.max(1), schedule, mttkrp: StrategyChoice::Auto }
    }

    /// Single-threaded execution.
    pub fn sequential() -> Self {
        Self { threads: 1, schedule: Schedule::Static, mttkrp: StrategyChoice::Auto }
    }

    /// All available cores with the suite's default dynamic schedule
    /// (the paper sets threads to the number of physical cores).
    pub fn parallel() -> Self {
        Self {
            threads: pasta_par::default_threads(),
            schedule: Schedule::default_dynamic(),
            mttkrp: StrategyChoice::Auto,
        }
    }

    /// The same context with a forced MTTKRP strategy.
    pub fn with_mttkrp(mut self, choice: StrategyChoice) -> Self {
        self.mttkrp = choice;
        self
    }

    /// Whether this context runs on one thread.
    pub fn is_sequential(&self) -> bool {
        self.threads == 1
    }
}

impl Default for Ctx {
    fn default() -> Self {
        Self::parallel()
    }
}

/// Process-wide instrumentation for the MTTKRP scheduling layer.
///
/// `Ctx` stays `Copy`, so the counters live in one global reachable through
/// [`mttkrp_counters`]; every traced MTTKRP execution adds to them. The
/// bench harness snapshots them around a run to report how much work each
/// strategy handled and what the privatized merge cost.
#[derive(Debug, Default)]
pub struct MttkrpCounters {
    /// Non-zeros processed by owner-computes schedules.
    pub owner_nnz: AtomicU64,
    /// Non-zeros processed by privatized-reduction schedules.
    pub privatized_nnz: AtomicU64,
    /// Non-zeros processed sequentially.
    pub sequential_nnz: AtomicU64,
    /// Bytes moved merging worker-private accumulators.
    pub merge_bytes: AtomicU64,
    /// Times a plan re-sorted a tensor to enable owner-computes.
    pub resorts: AtomicU64,
}

/// A point-in-time copy of the [`MttkrpCounters`] values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CounterSnapshot {
    /// Non-zeros processed by owner-computes schedules.
    pub owner_nnz: u64,
    /// Non-zeros processed by privatized-reduction schedules.
    pub privatized_nnz: u64,
    /// Non-zeros processed sequentially.
    pub sequential_nnz: u64,
    /// Bytes moved merging worker-private accumulators.
    pub merge_bytes: u64,
    /// Times a plan re-sorted a tensor to enable owner-computes.
    pub resorts: u64,
}

impl MttkrpCounters {
    /// Reads all counters at once (each relaxed; the set is not atomic).
    pub fn snapshot(&self) -> CounterSnapshot {
        CounterSnapshot {
            owner_nnz: self.owner_nnz.load(Ordering::Relaxed),
            privatized_nnz: self.privatized_nnz.load(Ordering::Relaxed),
            sequential_nnz: self.sequential_nnz.load(Ordering::Relaxed),
            merge_bytes: self.merge_bytes.load(Ordering::Relaxed),
            resorts: self.resorts.load(Ordering::Relaxed),
        }
    }

    /// Resets every counter to zero.
    pub fn reset(&self) {
        self.owner_nnz.store(0, Ordering::Relaxed);
        self.privatized_nnz.store(0, Ordering::Relaxed);
        self.sequential_nnz.store(0, Ordering::Relaxed);
        self.merge_bytes.store(0, Ordering::Relaxed);
        self.resorts.store(0, Ordering::Relaxed);
    }
}

static COUNTERS: MttkrpCounters = MttkrpCounters {
    owner_nnz: AtomicU64::new(0),
    privatized_nnz: AtomicU64::new(0),
    sequential_nnz: AtomicU64::new(0),
    merge_bytes: AtomicU64::new(0),
    resorts: AtomicU64::new(0),
};

/// The process-wide MTTKRP scheduling counters.
pub fn mttkrp_counters() -> &'static MttkrpCounters {
    &COUNTERS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert!(Ctx::sequential().is_sequential());
        assert!(!Ctx::new(4, Schedule::Guided).is_sequential());
        assert_eq!(Ctx::new(0, Schedule::Static).threads, 1, "clamped to 1");
        assert!(Ctx::default().threads >= 1);
        assert_eq!(Ctx::default().mttkrp, StrategyChoice::Auto);
        let forced = Ctx::parallel().with_mttkrp(StrategyChoice::Owner);
        assert_eq!(forced.mttkrp, StrategyChoice::Owner);
    }

    #[test]
    fn counter_snapshot_roundtrip() {
        // The global is shared across tests; only verify delta behavior.
        let c = mttkrp_counters();
        let before = c.snapshot();
        c.owner_nnz.fetch_add(5, Ordering::Relaxed);
        c.merge_bytes.fetch_add(64, Ordering::Relaxed);
        let after = c.snapshot();
        assert!(after.owner_nnz >= before.owner_nnz + 5);
        assert!(after.merge_bytes >= before.merge_bytes + 64);
    }
}
