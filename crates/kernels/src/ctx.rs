//! Kernel execution context: thread count and scheduling strategy.

use pasta_par::Schedule;

/// How a kernel should execute: worker count and loop schedule.
///
/// # Examples
///
/// ```
/// use pasta_kernels::Ctx;
/// use pasta_par::Schedule;
///
/// let seq = Ctx::sequential();
/// assert_eq!(seq.threads, 1);
/// let par = Ctx::new(8, Schedule::Static);
/// assert_eq!(par.threads, 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ctx {
    /// Number of worker threads (1 = sequential).
    pub threads: usize,
    /// Loop scheduling strategy for the parallel loops.
    pub schedule: Schedule,
}

impl Ctx {
    /// A context with explicit thread count and schedule.
    pub fn new(threads: usize, schedule: Schedule) -> Self {
        Self { threads: threads.max(1), schedule }
    }

    /// Single-threaded execution.
    pub fn sequential() -> Self {
        Self { threads: 1, schedule: Schedule::Static }
    }

    /// All available cores with the suite's default dynamic schedule
    /// (the paper sets threads to the number of physical cores).
    pub fn parallel() -> Self {
        Self { threads: pasta_par::default_threads(), schedule: Schedule::default_dynamic() }
    }

    /// Whether this context runs on one thread.
    pub fn is_sequential(&self) -> bool {
        self.threads == 1
    }
}

impl Default for Ctx {
    fn default() -> Self {
        Self::parallel()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert!(Ctx::sequential().is_sequential());
        assert!(!Ctx::new(4, Schedule::Guided).is_sequential());
        assert_eq!(Ctx::new(0, Schedule::Static).threads, 1, "clamped to 1");
        assert!(Ctx::default().threads >= 1);
    }
}
