//! TTV — tensor-times-vector in mode `n` (Section II-C, Algorithms 1 & 2).
//!
//! `Y = X ×_n v` contracts mode `n` with a dense vector, producing an
//! order-`N−1` sparse tensor with one non-zero per mode-`n` fiber (the
//! *sparse-dense property*: the product mode disappears, every other mode
//! keeps the input's sparsity). The expensive parts — sorting the tensor
//! with mode `n` last, finding the `M_F` fibers, and allocating the output
//! with its indices — happen once in the *plan*; the timed kernel is the
//! value computation alone, matching the paper's methodology.

use crate::fibers::{ttv_exec, BlockFibers, CooFibers};
use crate::pipeline::Ctx;
use pasta_core::{
    CooTensor, DenseVector, Error, FiberCursor, GHiCooTensor, HiCooTensor, Result, Shape, Value,
};

fn check_ttv_operands<V: Value>(x_shape: &Shape, v: &DenseVector<V>, n: usize) -> Result<()> {
    x_shape.check_mode(n)?;
    if x_shape.order() < 2 {
        return Err(Error::InvalidMode { mode: n, order: x_shape.order() });
    }
    if v.len() != x_shape.dim(n) as usize {
        return Err(Error::OperandMismatch {
            what: format!("vector length {} vs mode-{n} dimension {}", v.len(), x_shape.dim(n)),
        });
    }
    Ok(())
}

/// Pre-processed state for COO-TTV (Algorithm 1, lines 1–2).
///
/// # Examples
///
/// ```
/// use pasta_core::{CooTensor, DenseVector, Shape};
/// use pasta_kernels::{Ctx, TtvCooPlan};
///
/// # fn main() -> Result<(), pasta_core::Error> {
/// let x = CooTensor::from_entries(
///     Shape::new(vec![2, 2, 3]),
///     vec![(vec![0, 1, 0], 2.0_f32), (vec![0, 1, 2], 3.0)],
/// )?;
/// let plan = TtvCooPlan::new(&x, 2)?;
/// let v = DenseVector::from_vec(vec![1.0, 10.0, 100.0]);
/// let y = plan.execute(&v, &Ctx::sequential())?;
/// assert_eq!(y.get(&[0, 1]), Some(302.0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TtvCooPlan<V> {
    fibers: CooFibers<V>,
    out_shape: Shape,
}

impl<V: Value> TtvCooPlan<V> {
    /// Builds the plan: sorts a copy of `x` with mode `n` last, computes the
    /// fiber index, and pre-allocates the output indices.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidMode`] for an out-of-range mode or a
    /// first-order tensor.
    pub fn new(x: &CooTensor<V>, n: usize) -> Result<Self> {
        x.shape().check_mode(n)?;
        if x.order() < 2 {
            return Err(Error::InvalidMode { mode: n, order: x.order() });
        }
        Ok(Self { fibers: CooFibers::build(x, n)?, out_shape: x.shape().remove_mode(n) })
    }

    /// The product mode.
    pub fn mode(&self) -> usize {
        self.fibers.mode()
    }

    /// The number of output non-zeros, `M_F`.
    pub fn num_fibers(&self) -> usize {
        FiberCursor::num_fibers(&self.fibers)
    }

    /// The sorted input tensor the plan operates on.
    pub fn tensor(&self) -> &CooTensor<V> {
        self.fibers.tensor()
    }

    /// The timed kernel: computes the output values into `out`
    /// (length `M_F`), one per fiber, in parallel over fibers —
    /// [`ttv_exec`] over the [`CooFibers`] cursor.
    ///
    /// # Errors
    ///
    /// Returns an error if `v` has the wrong length or `out` the wrong size.
    pub fn execute_values(&self, v: &DenseVector<V>, out: &mut [V], ctx: &Ctx) -> Result<()> {
        check_ttv_operands(self.tensor().shape(), v, self.mode())?;
        ttv_exec(&self.fibers, v.as_slice(), out, ctx)
    }

    /// Computes `Y = X ×_n v` as a COO tensor (pre-allocated pattern plus
    /// [`Self::execute_values`]).
    ///
    /// # Errors
    ///
    /// As for [`Self::execute_values`].
    pub fn execute(&self, v: &DenseVector<V>, ctx: &Ctx) -> Result<CooTensor<V>> {
        let mut vals = vec![V::ZERO; self.num_fibers()];
        self.execute_values(v, &mut vals, ctx)?;
        let mut out =
            CooTensor::from_parts(self.out_shape.clone(), self.fibers.out_inds().to_vec(), vals)?;
        out.assume_sorted_by((0..self.out_shape.order()).collect());
        Ok(out)
    }
}

/// One-shot COO-TTV (plan + execute).
///
/// # Errors
///
/// As for [`TtvCooPlan::new`] / [`TtvCooPlan::execute`].
pub fn ttv_coo<V: Value>(
    x: &CooTensor<V>,
    v: &DenseVector<V>,
    n: usize,
    ctx: &Ctx,
) -> Result<CooTensor<V>> {
    TtvCooPlan::new(x, n)?.execute(v, ctx)
}

/// Pre-processed state for HiCOO-TTV.
///
/// The input is held in gHiCOO form with every mode *except* the product
/// mode blocked, so fibers nest inside blocks and the kernel can parallelize
/// over blocks without races (Section III-D). The output is HiCOO with the
/// input's block structure restricted to the non-product modes.
#[derive(Debug, Clone)]
pub struct TtvHicooPlan<V> {
    fibers: BlockFibers<V>,
    out_shape: Shape,
}

impl<V: Value> TtvHicooPlan<V> {
    /// Builds the plan from a COO tensor: converts to gHiCOO (mode `n`
    /// uncompressed), finds fibers within blocks and assembles the output's
    /// HiCOO skeleton — [`BlockFibers`].
    ///
    /// # Errors
    ///
    /// Returns an error for an invalid mode, first-order tensor or invalid
    /// block size.
    pub fn new(x: &CooTensor<V>, n: usize, block_size: u32) -> Result<Self> {
        Ok(Self {
            fibers: BlockFibers::build(x, n, block_size)?,
            out_shape: x.shape().remove_mode(n),
        })
    }

    /// The product mode.
    pub fn mode(&self) -> usize {
        self.fibers.mode()
    }

    /// The number of output non-zeros, `M_F`.
    pub fn num_fibers(&self) -> usize {
        FiberCursor::num_fibers(&self.fibers)
    }

    /// The gHiCOO input tensor.
    pub fn tensor(&self) -> &GHiCooTensor<V> {
        self.fibers.tensor()
    }

    /// The timed kernel: per-fiber dot products, parallel over blocks —
    /// [`ttv_exec`] over the [`BlockFibers`] cursor.
    ///
    /// # Errors
    ///
    /// Returns an error on operand size mismatches.
    pub fn execute_values(&self, v: &DenseVector<V>, out: &mut [V], ctx: &Ctx) -> Result<()> {
        check_ttv_operands(self.tensor().shape(), v, self.mode())?;
        ttv_exec(&self.fibers, v.as_slice(), out, ctx)
    }

    /// Computes `Y = X ×_n v` as a HiCOO tensor with the inherited block
    /// structure.
    ///
    /// # Errors
    ///
    /// As for [`Self::execute_values`].
    pub fn execute(&self, v: &DenseVector<V>, ctx: &Ctx) -> Result<HiCooTensor<V>> {
        let mut vals = vec![V::ZERO; self.num_fibers()];
        self.execute_values(v, &mut vals, ctx)?;
        HiCooTensor::from_raw_parts(
            self.out_shape.clone(),
            self.tensor().block_size(),
            self.fibers.bfptr().to_vec(),
            self.fibers.out_binds().to_vec(),
            self.fibers.out_einds().to_vec(),
            vals,
        )
    }
}

/// One-shot HiCOO-TTV (plan + execute).
///
/// # Errors
///
/// As for [`TtvHicooPlan::new`] / [`TtvHicooPlan::execute`].
pub fn ttv_hicoo<V: Value>(
    x: &CooTensor<V>,
    v: &DenseVector<V>,
    n: usize,
    block_size: u32,
    ctx: &Ctx,
) -> Result<HiCooTensor<V>> {
    TtvHicooPlan::new(x, n, block_size)?.execute(v, ctx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense_ref::{dense_approx_eq, ttv_dense};
    use pasta_core::Coord;

    fn sample() -> CooTensor<f64> {
        CooTensor::from_entries(
            Shape::new(vec![4, 5, 6]),
            vec![
                (vec![0, 0, 0], 1.0),
                (vec![0, 0, 5], 2.0),
                (vec![1, 2, 3], 3.0),
                (vec![3, 4, 1], 4.0),
                (vec![3, 4, 2], 5.0),
                (vec![2, 1, 0], -1.0),
            ],
        )
        .unwrap()
    }

    fn vec_for(x: &CooTensor<f64>, n: usize) -> DenseVector<f64> {
        DenseVector::from_fn(x.shape().dim(n) as usize, |i| (i as f64) * 0.5 + 1.0)
    }

    #[test]
    fn coo_matches_dense_every_mode() {
        let x = sample();
        for n in 0..3 {
            let v = vec_for(&x, n);
            let y = ttv_coo(&x, &v, n, &Ctx::sequential()).unwrap();
            let (shape, dense) = ttv_dense(&x, &v, n).unwrap();
            assert_eq!(y.shape(), &shape);
            let got = y.to_dense(1 << 12);
            assert!(dense_approx_eq(&got, &dense, 1e-10), "mode {n}");
        }
    }

    #[test]
    fn hicoo_matches_dense_every_mode() {
        let x = sample();
        for n in 0..3 {
            let v = vec_for(&x, n);
            let y = ttv_hicoo(&x, &v, n, 2, &Ctx::sequential()).unwrap();
            let (shape, dense) = ttv_dense(&x, &v, n).unwrap();
            assert_eq!(y.shape(), &shape);
            let got = y.to_coo().to_dense(1 << 12);
            assert!(dense_approx_eq(&got, &dense, 1e-10), "mode {n}");
        }
    }

    #[test]
    fn output_nnz_is_fiber_count() {
        let x = sample();
        let plan = TtvCooPlan::new(&x, 2).unwrap();
        // Fibers in mode 2: (0,0), (1,2), (3,4), (2,1) -> 4.
        assert_eq!(plan.num_fibers(), 4);
        assert_eq!(plan.mode(), 2);
        let y = plan.execute(&vec_for(&x, 2), &Ctx::sequential()).unwrap();
        assert_eq!(y.nnz(), 4);
    }

    #[test]
    fn parallel_matches_sequential() {
        let entries: Vec<(Vec<Coord>, f64)> = (0..20_000u32)
            .map(|i| (vec![i % 64, (i / 64) % 64, (i * 7) % 64], (i as f64).sin()))
            .collect();
        let mut x = CooTensor::from_entries(Shape::new(vec![64, 64, 64]), entries).unwrap();
        x.dedup_sum();
        let v = DenseVector::from_fn(64, |i| 1.0 / (i as f64 + 1.0));
        let seq = ttv_coo(&x, &v, 1, &Ctx::sequential()).unwrap();
        let par = ttv_coo(&x, &v, 1, &Ctx::new(8, pasta_par::Schedule::Dynamic(32))).unwrap();
        assert_eq!(seq.nnz(), par.nnz());
        for (a, b) in seq.vals().iter().zip(par.vals()) {
            assert!(a.approx_eq(*b, 1e-12));
        }
        // HiCOO agrees too.
        let h = ttv_hicoo(&x, &v, 1, 8, &Ctx::new(4, pasta_par::Schedule::Guided)).unwrap();
        let mut hc = h.to_coo();
        hc.sort();
        let mut sc = seq.clone();
        sc.sort();
        assert_eq!(hc.nnz(), sc.nnz());
        for (a, b) in hc.vals().iter().zip(sc.vals()) {
            assert!(a.approx_eq(*b, 1e-12));
        }
    }

    #[test]
    fn order5_matches_dense_every_mode() {
        // Order-5 contraction through the generic fiber cursors: the COO
        // and blocked plans and the CSF leaf plan all run `ttv_exec`.
        let entries: Vec<(Vec<Coord>, f64)> = (0..600u32)
            .map(|i| {
                (
                    vec![i % 3, (i / 3) % 4, (i / 12) % 5, (i / 60) % 3, (i * 11) % 4],
                    f64::from(i % 7) - 3.0,
                )
            })
            .collect();
        let mut x = CooTensor::from_entries(Shape::new(vec![3, 4, 5, 3, 4]), entries).unwrap();
        x.dedup_sum();
        for n in 0..5 {
            let v = vec_for(&x, n);
            let (shape, dense) = ttv_dense(&x, &v, n).unwrap();
            let coo = ttv_coo(&x, &v, n, &Ctx::new(4, pasta_par::Schedule::Static)).unwrap();
            assert_eq!(coo.shape(), &shape);
            assert!(dense_approx_eq(&coo.to_dense(1 << 12), &dense, 1e-10), "coo mode {n}");
            let hic = ttv_hicoo(&x, &v, n, 2, &Ctx::sequential()).unwrap();
            assert!(
                dense_approx_eq(&hic.to_coo().to_dense(1 << 12), &dense, 1e-10),
                "hicoo mode {n}"
            );
            let mut mo: Vec<usize> = (0..5).filter(|&m| m != n).collect();
            mo.push(n);
            let csf = pasta_core::CsfTensor::from_coo(&x, &mo).unwrap();
            let y = crate::csf::ttv_csf_leaf(&csf, &v, &Ctx::sequential()).unwrap();
            assert!(dense_approx_eq(&y.to_dense(1 << 12), &dense, 1e-10), "csf mode {n}");
        }
    }

    #[test]
    fn rejects_bad_operands() {
        let x = sample();
        let short = DenseVector::<f64>::zeros(2);
        assert!(matches!(
            ttv_coo(&x, &short, 0, &Ctx::sequential()),
            Err(Error::OperandMismatch { .. })
        ));
        assert!(matches!(TtvCooPlan::new(&x, 9), Err(Error::InvalidMode { .. })));
        let first_order =
            CooTensor::<f64>::from_entries(Shape::new(vec![4]), vec![(vec![1], 1.0)]).unwrap();
        assert!(TtvCooPlan::new(&first_order, 0).is_err());
        assert!(TtvHicooPlan::new(&first_order, 0, 2).is_err());
    }

    #[test]
    fn execute_values_size_checked() {
        let x = sample();
        let plan = TtvCooPlan::new(&x, 0).unwrap();
        let v = vec_for(&x, 0);
        let mut wrong = vec![0.0; plan.num_fibers() + 1];
        assert!(plan.execute_values(&v, &mut wrong, &Ctx::sequential()).is_err());
    }

    #[test]
    fn fourth_order_ttv() {
        let x = CooTensor::<f64>::from_entries(
            Shape::new(vec![3, 3, 3, 3]),
            vec![(vec![0, 1, 2, 0], 1.0), (vec![0, 1, 2, 2], 2.0), (vec![2, 2, 2, 1], 3.0)],
        )
        .unwrap();
        let v = DenseVector::from_vec(vec![1.0, 10.0, 100.0]);
        let y = ttv_coo(&x, &v, 3, &Ctx::sequential()).unwrap();
        let (shape, dense) = ttv_dense(&x, &v, 3).unwrap();
        assert!(dense_approx_eq(&y.to_dense(27), &dense, 1e-12));
        assert_eq!(y.shape(), &shape);
        let h = ttv_hicoo(&x, &v, 3, 2, &Ctx::sequential()).unwrap();
        assert!(dense_approx_eq(&h.to_coo().to_dense(27), &dense, 1e-12));
    }

    #[test]
    fn plan_reuse_across_vectors() {
        let x = sample();
        let plan = TtvCooPlan::new(&x, 2).unwrap();
        let v1 = vec_for(&x, 2);
        let v2 = DenseVector::from_fn(6, |_| 2.0);
        let y1 = plan.execute(&v1, &Ctx::sequential()).unwrap();
        let y2 = plan.execute(&v2, &Ctx::sequential()).unwrap();
        assert!(y1.same_pattern(&y2));
        assert_ne!(y1.vals(), y2.vals());
    }
}
