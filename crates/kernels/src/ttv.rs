//! TTV — tensor-times-vector in mode `n` (Section II-C, Algorithms 1 & 2).
//!
//! `Y = X ×_n v` contracts mode `n` with a dense vector, producing an
//! order-`N−1` sparse tensor with one non-zero per mode-`n` fiber (the
//! *sparse-dense property*: the product mode disappears, every other mode
//! keeps the input's sparsity). The expensive parts — sorting the tensor
//! with mode `n` last, finding the `M_F` fibers, and allocating the output
//! with its indices — happen once in the *plan*; the timed kernel is the
//! value computation alone, matching the paper's methodology.

use crate::ctx::Ctx;
use crate::microkernel::gather_dot;
use pasta_core::{
    CooTensor, Coord, DenseVector, Error, FiberIndex, GHiCooTensor, HiCooTensor, ModeIndex, Result,
    Shape, Value,
};
use pasta_par::{parallel_for, SharedSlice};

fn check_ttv_operands<V: Value>(x_shape: &Shape, v: &DenseVector<V>, n: usize) -> Result<()> {
    x_shape.check_mode(n)?;
    if x_shape.order() < 2 {
        return Err(Error::InvalidMode { mode: n, order: x_shape.order() });
    }
    if v.len() != x_shape.dim(n) as usize {
        return Err(Error::OperandMismatch {
            what: format!("vector length {} vs mode-{n} dimension {}", v.len(), x_shape.dim(n)),
        });
    }
    Ok(())
}

/// Pre-processed state for COO-TTV (Algorithm 1, lines 1–2).
///
/// # Examples
///
/// ```
/// use pasta_core::{CooTensor, DenseVector, Shape};
/// use pasta_kernels::{Ctx, TtvCooPlan};
///
/// # fn main() -> Result<(), pasta_core::Error> {
/// let x = CooTensor::from_entries(
///     Shape::new(vec![2, 2, 3]),
///     vec![(vec![0, 1, 0], 2.0_f32), (vec![0, 1, 2], 3.0)],
/// )?;
/// let plan = TtvCooPlan::new(&x, 2)?;
/// let v = DenseVector::from_vec(vec![1.0, 10.0, 100.0]);
/// let y = plan.execute(&v, &Ctx::sequential())?;
/// assert_eq!(y.get(&[0, 1]), Some(302.0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TtvCooPlan<V> {
    x: CooTensor<V>,
    fibers: FiberIndex,
    n: usize,
    out_shape: Shape,
    out_inds: Vec<Vec<Coord>>,
}

impl<V: Value> TtvCooPlan<V> {
    /// Builds the plan: sorts a copy of `x` with mode `n` last, computes the
    /// fiber index, and pre-allocates the output indices.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidMode`] for an out-of-range mode or a
    /// first-order tensor.
    pub fn new(x: &CooTensor<V>, n: usize) -> Result<Self> {
        x.shape().check_mode(n)?;
        if x.order() < 2 {
            return Err(Error::InvalidMode { mode: n, order: x.order() });
        }
        let mut xs = x.clone();
        xs.sort_mode_last(n);
        let fibers = FiberIndex::build(&xs, n);
        let out_shape = x.shape().remove_mode(n);
        let mf = fibers.num_fibers();
        let mut out_inds: Vec<Vec<Coord>> = vec![Vec::with_capacity(mf); out_shape.order()];
        for f in 0..mf {
            let coords = fibers.fiber_coords(&xs, f);
            for (m, col) in out_inds.iter_mut().enumerate() {
                col.push(coords[m]);
            }
        }
        Ok(Self { x: xs, fibers, n, out_shape, out_inds })
    }

    /// The product mode.
    pub fn mode(&self) -> usize {
        self.n
    }

    /// The number of output non-zeros, `M_F`.
    pub fn num_fibers(&self) -> usize {
        self.fibers.num_fibers()
    }

    /// The sorted input tensor the plan operates on.
    pub fn tensor(&self) -> &CooTensor<V> {
        &self.x
    }

    /// The timed kernel: computes the output values into `out`
    /// (length `M_F`), one per fiber, in parallel over fibers.
    ///
    /// # Errors
    ///
    /// Returns an error if `v` has the wrong length or `out` the wrong size.
    pub fn execute_values(&self, v: &DenseVector<V>, out: &mut [V], ctx: &Ctx) -> Result<()> {
        check_ttv_operands(self.x.shape(), v, self.n)?;
        if out.len() != self.num_fibers() {
            return Err(Error::OperandMismatch {
                what: format!("output length {} vs M_F {}", out.len(), self.num_fibers()),
            });
        }
        let kind = self.x.mode_inds(self.n);
        let vals = self.x.vals();
        let vv = v.as_slice();
        let shared = SharedSlice::new(out);
        parallel_for(self.num_fibers(), ctx.threads, ctx.schedule, |range| {
            for f in range {
                let acc = gather_dot(vals, kind, vv, self.fibers.fiber_range(f));
                // SAFETY: one fiber -> one output slot; ranges partition fibers.
                unsafe { shared.write(f, acc) };
            }
        });
        Ok(())
    }

    /// Computes `Y = X ×_n v` as a COO tensor (pre-allocated pattern plus
    /// [`Self::execute_values`]).
    ///
    /// # Errors
    ///
    /// As for [`Self::execute_values`].
    pub fn execute(&self, v: &DenseVector<V>, ctx: &Ctx) -> Result<CooTensor<V>> {
        let mut vals = vec![V::ZERO; self.num_fibers()];
        self.execute_values(v, &mut vals, ctx)?;
        let mut out = CooTensor::from_parts(self.out_shape.clone(), self.out_inds.clone(), vals)?;
        out.assume_sorted_by((0..self.out_shape.order()).collect());
        Ok(out)
    }
}

/// One-shot COO-TTV (plan + execute).
///
/// # Errors
///
/// As for [`TtvCooPlan::new`] / [`TtvCooPlan::execute`].
pub fn ttv_coo<V: Value>(
    x: &CooTensor<V>,
    v: &DenseVector<V>,
    n: usize,
    ctx: &Ctx,
) -> Result<CooTensor<V>> {
    TtvCooPlan::new(x, n)?.execute(v, ctx)
}

/// Pre-processed state for HiCOO-TTV.
///
/// The input is held in gHiCOO form with every mode *except* the product
/// mode blocked, so fibers nest inside blocks and the kernel can parallelize
/// over blocks without races (Section III-D). The output is HiCOO with the
/// input's block structure restricted to the non-product modes.
#[derive(Debug, Clone)]
pub struct TtvHicooPlan<V> {
    g: GHiCooTensor<V>,
    n: usize,
    /// Fiber start offsets within the entry order, plus sentinel.
    fptr: Vec<usize>,
    /// Fiber range per block: block `b` owns fibers `bfptr[b]..bfptr[b+1]`.
    bfptr: Vec<usize>,
    out_shape: Shape,
    out_binds: Vec<Vec<Coord>>,
    out_einds: Vec<Vec<u8>>,
}

impl<V: Value> TtvHicooPlan<V> {
    /// Builds the plan from a COO tensor: converts to gHiCOO (mode `n`
    /// uncompressed), finds fibers within blocks and assembles the output's
    /// HiCOO skeleton.
    ///
    /// # Errors
    ///
    /// Returns an error for an invalid mode, first-order tensor or invalid
    /// block size.
    pub fn new(x: &CooTensor<V>, n: usize, block_size: u32) -> Result<Self> {
        x.shape().check_mode(n)?;
        if x.order() < 2 {
            return Err(Error::InvalidMode { mode: n, order: x.order() });
        }
        let order = x.order();
        let blocked: Vec<bool> = (0..order).map(|m| m != n).collect();
        let g = GHiCooTensor::from_coo(x, block_size, &blocked)?;
        let other: Vec<usize> = (0..order).filter(|&m| m != n).collect();

        // Walk blocks; a new fiber starts when any blocked element index
        // changes (block coordinates are constant within a block).
        let mut fptr = Vec::new();
        let mut bfptr = Vec::with_capacity(g.num_blocks() + 1);
        let mut out_binds: Vec<Vec<Coord>> = vec![Vec::with_capacity(g.num_blocks()); other.len()];
        let mut out_einds: Vec<Vec<u8>> = vec![Vec::new(); other.len()];
        let mut fiber_count = 0usize;
        for b in 0..g.num_blocks() {
            bfptr.push(fiber_count);
            let range = g.block_range(b);
            let mut prev: Option<Vec<u8>> = None;
            for x in range {
                let key: Vec<u8> = other
                    .iter()
                    .map(|&m| match g.mode_index(m) {
                        ModeIndex::Blocked { einds, .. } => einds[x],
                        ModeIndex::Full(_) => unreachable!("non-product modes are blocked"),
                    })
                    .collect();
                if prev.as_ref() != Some(&key) {
                    fptr.push(x);
                    for (k, col) in out_einds.iter_mut().enumerate() {
                        col.push(key[k]);
                    }
                    fiber_count += 1;
                    prev = Some(key);
                }
            }
            for (k, &m) in other.iter().enumerate() {
                if let ModeIndex::Blocked { binds, .. } = g.mode_index(m) {
                    out_binds[k].push(binds[b]);
                }
            }
        }
        bfptr.push(fiber_count);
        fptr.push(g.nnz());

        Ok(Self { n, fptr, bfptr, out_shape: x.shape().remove_mode(n), out_binds, out_einds, g })
    }

    /// The product mode.
    pub fn mode(&self) -> usize {
        self.n
    }

    /// The number of output non-zeros, `M_F`.
    pub fn num_fibers(&self) -> usize {
        self.fptr.len() - 1
    }

    /// The gHiCOO input tensor.
    pub fn tensor(&self) -> &GHiCooTensor<V> {
        &self.g
    }

    /// The timed kernel: per-fiber dot products, parallel over blocks.
    ///
    /// # Errors
    ///
    /// Returns an error on operand size mismatches.
    pub fn execute_values(&self, v: &DenseVector<V>, out: &mut [V], ctx: &Ctx) -> Result<()> {
        check_ttv_operands(self.g.shape(), v, self.n)?;
        if out.len() != self.num_fibers() {
            return Err(Error::OperandMismatch {
                what: format!("output length {} vs M_F {}", out.len(), self.num_fibers()),
            });
        }
        let kind = match self.g.mode_index(self.n) {
            ModeIndex::Full(finds) => finds.as_slice(),
            ModeIndex::Blocked { .. } => unreachable!("product mode is uncompressed"),
        };
        let vals = self.g.vals();
        let vv = v.as_slice();
        let shared = SharedSlice::new(out);
        parallel_for(self.bfptr.len() - 1, ctx.threads, ctx.schedule, |blocks| {
            for b in blocks {
                for f in self.bfptr[b]..self.bfptr[b + 1] {
                    let acc = gather_dot(vals, kind, vv, self.fptr[f]..self.fptr[f + 1]);
                    // SAFETY: fibers nest in blocks; blocks partition fibers.
                    unsafe { shared.write(f, acc) };
                }
            }
        });
        Ok(())
    }

    /// Computes `Y = X ×_n v` as a HiCOO tensor with the inherited block
    /// structure.
    ///
    /// # Errors
    ///
    /// As for [`Self::execute_values`].
    pub fn execute(&self, v: &DenseVector<V>, ctx: &Ctx) -> Result<HiCooTensor<V>> {
        let mut vals = vec![V::ZERO; self.num_fibers()];
        self.execute_values(v, &mut vals, ctx)?;
        HiCooTensor::from_raw_parts(
            self.out_shape.clone(),
            self.g.block_size(),
            self.bfptr.clone(),
            self.out_binds.clone(),
            self.out_einds.clone(),
            vals,
        )
    }
}

/// One-shot HiCOO-TTV (plan + execute).
///
/// # Errors
///
/// As for [`TtvHicooPlan::new`] / [`TtvHicooPlan::execute`].
pub fn ttv_hicoo<V: Value>(
    x: &CooTensor<V>,
    v: &DenseVector<V>,
    n: usize,
    block_size: u32,
    ctx: &Ctx,
) -> Result<HiCooTensor<V>> {
    TtvHicooPlan::new(x, n, block_size)?.execute(v, ctx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense_ref::{dense_approx_eq, ttv_dense};

    fn sample() -> CooTensor<f64> {
        CooTensor::from_entries(
            Shape::new(vec![4, 5, 6]),
            vec![
                (vec![0, 0, 0], 1.0),
                (vec![0, 0, 5], 2.0),
                (vec![1, 2, 3], 3.0),
                (vec![3, 4, 1], 4.0),
                (vec![3, 4, 2], 5.0),
                (vec![2, 1, 0], -1.0),
            ],
        )
        .unwrap()
    }

    fn vec_for(x: &CooTensor<f64>, n: usize) -> DenseVector<f64> {
        DenseVector::from_fn(x.shape().dim(n) as usize, |i| (i as f64) * 0.5 + 1.0)
    }

    #[test]
    fn coo_matches_dense_every_mode() {
        let x = sample();
        for n in 0..3 {
            let v = vec_for(&x, n);
            let y = ttv_coo(&x, &v, n, &Ctx::sequential()).unwrap();
            let (shape, dense) = ttv_dense(&x, &v, n).unwrap();
            assert_eq!(y.shape(), &shape);
            let got = y.to_dense(1 << 12);
            assert!(dense_approx_eq(&got, &dense, 1e-10), "mode {n}");
        }
    }

    #[test]
    fn hicoo_matches_dense_every_mode() {
        let x = sample();
        for n in 0..3 {
            let v = vec_for(&x, n);
            let y = ttv_hicoo(&x, &v, n, 2, &Ctx::sequential()).unwrap();
            let (shape, dense) = ttv_dense(&x, &v, n).unwrap();
            assert_eq!(y.shape(), &shape);
            let got = y.to_coo().to_dense(1 << 12);
            assert!(dense_approx_eq(&got, &dense, 1e-10), "mode {n}");
        }
    }

    #[test]
    fn output_nnz_is_fiber_count() {
        let x = sample();
        let plan = TtvCooPlan::new(&x, 2).unwrap();
        // Fibers in mode 2: (0,0), (1,2), (3,4), (2,1) -> 4.
        assert_eq!(plan.num_fibers(), 4);
        assert_eq!(plan.mode(), 2);
        let y = plan.execute(&vec_for(&x, 2), &Ctx::sequential()).unwrap();
        assert_eq!(y.nnz(), 4);
    }

    #[test]
    fn parallel_matches_sequential() {
        let entries: Vec<(Vec<Coord>, f64)> = (0..20_000u32)
            .map(|i| (vec![i % 64, (i / 64) % 64, (i * 7) % 64], (i as f64).sin()))
            .collect();
        let mut x = CooTensor::from_entries(Shape::new(vec![64, 64, 64]), entries).unwrap();
        x.dedup_sum();
        let v = DenseVector::from_fn(64, |i| 1.0 / (i as f64 + 1.0));
        let seq = ttv_coo(&x, &v, 1, &Ctx::sequential()).unwrap();
        let par = ttv_coo(&x, &v, 1, &Ctx::new(8, pasta_par::Schedule::Dynamic(32))).unwrap();
        assert_eq!(seq.nnz(), par.nnz());
        for (a, b) in seq.vals().iter().zip(par.vals()) {
            assert!(a.approx_eq(*b, 1e-12));
        }
        // HiCOO agrees too.
        let h = ttv_hicoo(&x, &v, 1, 8, &Ctx::new(4, pasta_par::Schedule::Guided)).unwrap();
        let mut hc = h.to_coo();
        hc.sort();
        let mut sc = seq.clone();
        sc.sort();
        assert_eq!(hc.nnz(), sc.nnz());
        for (a, b) in hc.vals().iter().zip(sc.vals()) {
            assert!(a.approx_eq(*b, 1e-12));
        }
    }

    #[test]
    fn rejects_bad_operands() {
        let x = sample();
        let short = DenseVector::<f64>::zeros(2);
        assert!(matches!(
            ttv_coo(&x, &short, 0, &Ctx::sequential()),
            Err(Error::OperandMismatch { .. })
        ));
        assert!(matches!(TtvCooPlan::new(&x, 9), Err(Error::InvalidMode { .. })));
        let first_order =
            CooTensor::<f64>::from_entries(Shape::new(vec![4]), vec![(vec![1], 1.0)]).unwrap();
        assert!(TtvCooPlan::new(&first_order, 0).is_err());
        assert!(TtvHicooPlan::new(&first_order, 0, 2).is_err());
    }

    #[test]
    fn execute_values_size_checked() {
        let x = sample();
        let plan = TtvCooPlan::new(&x, 0).unwrap();
        let v = vec_for(&x, 0);
        let mut wrong = vec![0.0; plan.num_fibers() + 1];
        assert!(plan.execute_values(&v, &mut wrong, &Ctx::sequential()).is_err());
    }

    #[test]
    fn fourth_order_ttv() {
        let x = CooTensor::<f64>::from_entries(
            Shape::new(vec![3, 3, 3, 3]),
            vec![(vec![0, 1, 2, 0], 1.0), (vec![0, 1, 2, 2], 2.0), (vec![2, 2, 2, 1], 3.0)],
        )
        .unwrap();
        let v = DenseVector::from_vec(vec![1.0, 10.0, 100.0]);
        let y = ttv_coo(&x, &v, 3, &Ctx::sequential()).unwrap();
        let (shape, dense) = ttv_dense(&x, &v, 3).unwrap();
        assert!(dense_approx_eq(&y.to_dense(27), &dense, 1e-12));
        assert_eq!(y.shape(), &shape);
        let h = ttv_hicoo(&x, &v, 3, 2, &Ctx::sequential()).unwrap();
        assert!(dense_approx_eq(&h.to_coo().to_dense(27), &dense, 1e-12));
    }

    #[test]
    fn plan_reuse_across_vectors() {
        let x = sample();
        let plan = TtvCooPlan::new(&x, 2).unwrap();
        let v1 = vec_for(&x, 2);
        let v2 = DenseVector::from_fn(6, |_| 2.0);
        let y1 = plan.execute(&v1, &Ctx::sequential()).unwrap();
        let y2 = plan.execute(&v2, &Ctx::sequential()).unwrap();
        assert!(y1.same_pattern(&y2));
        assert_ne!(y1.vals(), y2.vals());
    }
}
