//! TTM — tensor-times-matrix in mode `n` (Section II-D).
//!
//! `Y = X ×_n U` with `U ∈ R^{I_n × R}` (the paper's transposed convention,
//! row-major friendly). By the sparse-dense property the output is
//! *semi-sparse*: mode `n` becomes dense with extent `R` while the other
//! modes keep the input's fiber pattern, so COO-TTM writes an sCOO tensor
//! and HiCOO-TTM an sHiCOO tensor, both pre-allocated by the plan.

use crate::fibers::{ttm_exec, BlockFibers, CooFibers};
use crate::pipeline::Ctx;
use pasta_core::{
    CooTensor, Coord, DenseMatrix, Error, FiberCursor, GHiCooTensor, Result, SHiCooTensor,
    SemiCooTensor, Shape, Value,
};

fn check_ttm_operands<V: Value>(x_shape: &Shape, u: &DenseMatrix<V>, n: usize) -> Result<()> {
    x_shape.check_mode(n)?;
    if u.rows() != x_shape.dim(n) as usize {
        return Err(Error::OperandMismatch {
            what: format!("matrix rows {} vs mode-{n} dimension {}", u.rows(), x_shape.dim(n)),
        });
    }
    if u.cols() == 0 {
        return Err(Error::OperandMismatch { what: "matrix must have at least one column".into() });
    }
    Ok(())
}

/// Pre-processed state for COO-TTM.
///
/// # Examples
///
/// ```
/// use pasta_core::{CooTensor, DenseMatrix, Shape};
/// use pasta_kernels::{Ctx, TtmCooPlan};
///
/// # fn main() -> Result<(), pasta_core::Error> {
/// let x = CooTensor::from_entries(
///     Shape::new(vec![2, 2, 3]),
///     vec![(vec![0, 1, 0], 2.0_f32), (vec![0, 1, 2], 3.0)],
/// )?;
/// let u = DenseMatrix::from_fn(3, 2, |i, j| (i + j) as f32);
/// let plan = TtmCooPlan::new(&x, 2)?;
/// let y = plan.execute(&u, &Ctx::sequential())?;
/// assert_eq!(y.num_fibers(), 1);
/// assert_eq!(y.fiber_vals(0), &[6.0, 11.0]); // 2*(0,1) + 3*(2,3)
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TtmCooPlan<V> {
    fibers: CooFibers<V>,
}

impl<V: Value> TtmCooPlan<V> {
    /// Builds the plan: sorts a copy with mode `n` last, finds fibers, and
    /// pre-computes the output's sparse indices — [`CooFibers`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidMode`] for an out-of-range mode.
    pub fn new(x: &CooTensor<V>, n: usize) -> Result<Self> {
        Ok(Self { fibers: CooFibers::build(x, n)? })
    }

    /// The product mode.
    pub fn mode(&self) -> usize {
        self.fibers.mode()
    }

    /// The number of output fibers, `M_F`.
    pub fn num_fibers(&self) -> usize {
        FiberCursor::num_fibers(&self.fibers)
    }

    /// The sorted input tensor.
    pub fn tensor(&self) -> &CooTensor<V> {
        self.fibers.tensor()
    }

    /// The timed kernel: accumulates `val · U[k, :]` into each fiber's dense
    /// row. `out` must have length `M_F × R`. Parallel over fibers —
    /// [`ttm_exec`] over the [`CooFibers`] cursor.
    ///
    /// # Errors
    ///
    /// Returns an error on operand size mismatches.
    pub fn execute_values(&self, u: &DenseMatrix<V>, out: &mut [V], ctx: &Ctx) -> Result<()> {
        check_ttm_operands(self.tensor().shape(), u, self.mode())?;
        ttm_exec(&self.fibers, u, out, ctx)
    }

    /// Computes `Y = X ×_n U` as an sCOO tensor with dense mode `n`.
    ///
    /// # Errors
    ///
    /// As for [`Self::execute_values`].
    pub fn execute(&self, u: &DenseMatrix<V>, ctx: &Ctx) -> Result<SemiCooTensor<V>> {
        let r = u.cols();
        let mut vals = vec![V::ZERO; self.num_fibers() * r];
        self.execute_values(u, &mut vals, ctx)?;
        let out_shape = self.tensor().shape().replace_mode(self.mode(), r as u32);
        SemiCooTensor::from_fibers(
            out_shape,
            vec![self.mode()],
            self.fibers.out_inds().to_vec(),
            vals,
        )
    }
}

/// One-shot COO-TTM (plan + execute).
///
/// # Errors
///
/// As for [`TtmCooPlan::new`] / [`TtmCooPlan::execute`].
pub fn ttm_coo<V: Value>(
    x: &CooTensor<V>,
    u: &DenseMatrix<V>,
    n: usize,
    ctx: &Ctx,
) -> Result<SemiCooTensor<V>> {
    TtmCooPlan::new(x, n)?.execute(u, ctx)
}

/// Pre-processed state for HiCOO-TTM: gHiCOO input (product mode
/// uncompressed), sHiCOO output skeleton inherited from the input blocks.
#[derive(Debug, Clone)]
pub struct TtmHicooPlan<V> {
    fibers: BlockFibers<V>,
}

impl<V: Value> TtmHicooPlan<V> {
    /// Builds the plan from a COO tensor — [`BlockFibers`].
    ///
    /// # Errors
    ///
    /// Returns an error for an invalid mode or block size, or a first-order
    /// tensor.
    pub fn new(x: &CooTensor<V>, n: usize, block_size: u32) -> Result<Self> {
        Ok(Self { fibers: BlockFibers::build(x, n, block_size)? })
    }

    /// The product mode.
    pub fn mode(&self) -> usize {
        self.fibers.mode()
    }

    /// The number of output fibers, `M_F`.
    pub fn num_fibers(&self) -> usize {
        FiberCursor::num_fibers(&self.fibers)
    }

    /// The gHiCOO input tensor.
    pub fn tensor(&self) -> &GHiCooTensor<V> {
        self.fibers.tensor()
    }

    /// The timed kernel: per-fiber dense accumulation, parallel over blocks
    /// — [`ttm_exec`] over the [`BlockFibers`] cursor.
    ///
    /// # Errors
    ///
    /// Returns an error on operand size mismatches.
    pub fn execute_values(&self, u: &DenseMatrix<V>, out: &mut [V], ctx: &Ctx) -> Result<()> {
        check_ttm_operands(self.tensor().shape(), u, self.mode())?;
        ttm_exec(&self.fibers, u, out, ctx)
    }

    /// Computes `Y = X ×_n U` as an sHiCOO tensor.
    ///
    /// # Errors
    ///
    /// As for [`Self::execute_values`].
    pub fn execute(&self, u: &DenseMatrix<V>, ctx: &Ctx) -> Result<SHiCooTensor<V>> {
        let r = u.cols();
        let mut vals = vec![V::ZERO; self.num_fibers() * r];
        self.execute_values(u, &mut vals, ctx)?;
        let out_shape = self.tensor().shape().replace_mode(self.mode(), r as u32);
        SHiCooTensor::from_raw_parts(
            out_shape,
            self.tensor().block_size(),
            vec![self.mode()],
            self.fibers.bfptr().to_vec(),
            self.fibers.out_binds().to_vec(),
            self.fibers.out_einds().to_vec(),
            vals,
        )
    }
}

/// One-shot HiCOO-TTM (plan + execute).
///
/// # Errors
///
/// As for [`TtmHicooPlan::new`] / [`TtmHicooPlan::execute`].
pub fn ttm_hicoo<V: Value>(
    x: &CooTensor<V>,
    u: &DenseMatrix<V>,
    n: usize,
    block_size: u32,
    ctx: &Ctx,
) -> Result<SHiCooTensor<V>> {
    TtmHicooPlan::new(x, n, block_size)?.execute(u, ctx)
}

/// TTM directly on a semi-sparse (sCOO) input — the TTM-chain building
/// block: `Y = X ×_n U` where `X` already has dense mode(s) from earlier
/// products. The result adds mode `n` to the dense set without ever
/// expanding back to COO.
///
/// Three cases for mode `n`:
///
/// - `n` already dense: a dense matrix product per fiber (contract the `n`
///   axis of each fiber's dense block with `U`);
/// - `n` sparse: group fibers that differ only in mode `n` and accumulate
///   `val ⊗ U[k, :]` — the sparse-dense property turns `n` dense.
///
/// # Errors
///
/// Returns an error for an invalid mode or mismatched matrix rows.
pub fn ttm_scoo<V: Value>(
    x: &SemiCooTensor<V>,
    u: &DenseMatrix<V>,
    n: usize,
    ctx: &Ctx,
) -> Result<SemiCooTensor<V>> {
    check_ttm_operands(x.shape(), u, n)?;
    let r = u.cols();
    let out_shape = x.shape().replace_mode(n, r as u32);

    if x.dense_modes().contains(&n) {
        // Contract an axis that is already dense inside each fiber.
        // Dense layout: row-major over dense modes in increasing order.
        let dmodes = x.dense_modes().to_vec();
        let pos = dmodes.iter().position(|&m| m == n).expect("checked");
        let dims: Vec<usize> = dmodes.iter().map(|&m| x.shape().dim(m) as usize).collect();
        let before: usize = dims[..pos].iter().product();
        let kdim = dims[pos];
        let after: usize = dims[pos + 1..].iter().product();
        let out_dvol = before * r * after;
        let nf = x.num_fibers();
        let mut vals = vec![V::ZERO; nf * out_dvol];
        {
            let shared = pasta_par::SharedSlice::new(&mut vals);
            pasta_par::parallel_for(nf, ctx.threads, ctx.schedule, |range| {
                for f in range {
                    let src = x.fiber_vals(f);
                    // SAFETY: one fiber owns one disjoint output block.
                    let dst = unsafe { shared.slice_mut(f * out_dvol..(f + 1) * out_dvol) };
                    for b in 0..before {
                        for k in 0..kdim {
                            let urow = u.row(k);
                            for (rr, &uv) in urow.iter().enumerate() {
                                for a in 0..after {
                                    dst[(b * r + rr) * after + a] +=
                                        src[(b * kdim + k) * after + a] * uv;
                                }
                            }
                        }
                    }
                }
            });
        }
        let inds: Vec<Vec<Coord>> =
            (0..x.sparse_modes().len()).map(|k| x.sparse_inds(k).to_vec()).collect();
        return SemiCooTensor::from_fibers(out_shape, dmodes, inds, vals);
    }

    // Mode n is sparse: fibers sharing all sparse coords except n merge.
    let ns = x.sparse_modes().len();
    let n_pos = x.sparse_modes().iter().position(|&m| m == n).expect("n is sparse");
    let dvol = x.dense_volume();

    // Sort fiber ids so groups (equal sparse coords besides n) are adjacent.
    let mut perm: Vec<usize> = (0..x.num_fibers()).collect();
    perm.sort_by(|&a, &b| {
        for k in (0..ns).filter(|&k| k != n_pos) {
            let ord = x.sparse_inds(k)[a].cmp(&x.sparse_inds(k)[b]);
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        x.sparse_inds(n_pos)[a].cmp(&x.sparse_inds(n_pos)[b])
    });
    // Group boundaries.
    let mut groups: Vec<(usize, usize)> = Vec::new();
    let mut start = 0usize;
    for i in 1..=perm.len() {
        let boundary = i == perm.len()
            || (0..ns)
                .filter(|&k| k != n_pos)
                .any(|k| x.sparse_inds(k)[perm[i]] != x.sparse_inds(k)[perm[i - 1]]);
        if boundary {
            groups.push((start, i));
            start = i;
        }
    }
    if perm.is_empty() {
        groups.clear();
    }

    // Output dense layout: dense modes = old dense modes + n, increasing.
    let mut out_dmodes = x.dense_modes().to_vec();
    out_dmodes.push(n);
    out_dmodes.sort_unstable();
    // Position of n among the output dense modes decides the layout stride.
    let n_dpos = out_dmodes.iter().position(|&m| m == n).expect("just inserted");
    let old_dims: Vec<usize> = x.dense_modes().iter().map(|&m| x.shape().dim(m) as usize).collect();
    let before: usize = old_dims[..n_dpos].iter().product();
    let after: usize = old_dims[n_dpos..].iter().product();
    debug_assert_eq!(before * after, dvol);
    let out_dvol = dvol * r;

    let mut vals = vec![V::ZERO; groups.len() * out_dvol];
    {
        let shared = pasta_par::SharedSlice::new(&mut vals);
        pasta_par::parallel_for(groups.len(), ctx.threads, ctx.schedule, |range| {
            for g in range {
                let (lo, hi) = groups[g];
                // SAFETY: one group owns one disjoint output block.
                let dst = unsafe { shared.slice_mut(g * out_dvol..(g + 1) * out_dvol) };
                for &f in &perm[lo..hi] {
                    let k = x.sparse_inds(n_pos)[f] as usize;
                    let urow = u.row(k);
                    let src = x.fiber_vals(f);
                    for b in 0..before {
                        for (rr, &uv) in urow.iter().enumerate() {
                            for a in 0..after {
                                dst[(b * r + rr) * after + a] += src[b * after + a] * uv;
                            }
                        }
                    }
                }
            }
        });
    }
    let mut inds: Vec<Vec<Coord>> = vec![Vec::with_capacity(groups.len()); ns - 1];
    for &(lo, _) in &groups {
        let f = perm[lo];
        let mut kk = 0;
        for k in 0..ns {
            if k == n_pos {
                continue;
            }
            inds[kk].push(x.sparse_inds(k)[f]);
            kk += 1;
        }
    }
    SemiCooTensor::from_fibers(out_shape, out_dmodes, inds, vals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense_ref::{dense_approx_eq, ttm_dense};

    fn sample() -> CooTensor<f64> {
        CooTensor::from_entries(
            Shape::new(vec![4, 5, 6]),
            vec![
                (vec![0, 0, 0], 1.0),
                (vec![0, 0, 5], 2.0),
                (vec![1, 2, 3], 3.0),
                (vec![3, 4, 1], 4.0),
                (vec![3, 4, 2], 5.0),
                (vec![2, 1, 0], -1.0),
            ],
        )
        .unwrap()
    }

    fn mat_for(x: &CooTensor<f64>, n: usize, r: usize) -> DenseMatrix<f64> {
        DenseMatrix::from_fn(x.shape().dim(n) as usize, r, |i, j| {
            ((i * 7 + j * 3) % 5) as f64 - 2.0
        })
    }

    #[test]
    fn coo_matches_dense_every_mode() {
        let x = sample();
        for n in 0..3 {
            let u = mat_for(&x, n, 4);
            let y = ttm_coo(&x, &u, n, &Ctx::sequential()).unwrap();
            let (shape, dense) = ttm_dense(&x, &u, n).unwrap();
            assert_eq!(y.shape(), &shape);
            let got = y.to_coo().to_dense(1 << 12);
            assert!(dense_approx_eq(&got, &dense, 1e-10), "mode {n}");
        }
    }

    #[test]
    fn hicoo_matches_dense_every_mode() {
        let x = sample();
        for n in 0..3 {
            let u = mat_for(&x, n, 4);
            let y = ttm_hicoo(&x, &u, n, 2, &Ctx::sequential()).unwrap();
            let (shape, dense) = ttm_dense(&x, &u, n).unwrap();
            assert_eq!(y.shape(), &shape);
            let got = y.to_scoo().unwrap().to_coo().to_dense(1 << 12);
            assert!(dense_approx_eq(&got, &dense, 1e-10), "mode {n}");
        }
    }

    #[test]
    fn output_is_semi_sparse_in_mode_n() {
        let x = sample();
        let u = mat_for(&x, 2, 3);
        let y = ttm_coo(&x, &u, 2, &Ctx::sequential()).unwrap();
        assert_eq!(y.dense_modes(), &[2]);
        assert_eq!(y.shape().dim(2), 3);
        assert_eq!(y.num_fibers(), 4); // fibers of mode 2
        assert_eq!(y.dense_volume(), 3);
    }

    #[test]
    fn parallel_matches_sequential() {
        let entries: Vec<(Vec<Coord>, f64)> = (0..10_000u32)
            .map(|i| (vec![i % 32, (i / 32) % 32, (i * 11) % 32], (i as f64).cos()))
            .collect();
        let mut x = CooTensor::from_entries(Shape::new(vec![32, 32, 32]), entries).unwrap();
        x.dedup_sum();
        let u = mat_for(&x, 0, 16);
        let seq = ttm_coo(&x, &u, 0, &Ctx::sequential()).unwrap();
        let par = ttm_coo(&x, &u, 0, &Ctx::new(8, pasta_par::Schedule::Static)).unwrap();
        assert_eq!(seq.num_fibers(), par.num_fibers());
        for (a, b) in seq.vals().iter().zip(par.vals()) {
            assert!(a.approx_eq(*b, 1e-12));
        }
        let h = ttm_hicoo(&x, &u, 0, 8, &Ctx::new(4, pasta_par::Schedule::Dynamic(16))).unwrap();
        let mut ha = h.to_scoo().unwrap().to_coo();
        ha.sort();
        let mut sa = seq.to_coo();
        sa.sort();
        assert_eq!(ha.nnz(), sa.nnz());
        for (a, b) in ha.vals().iter().zip(sa.vals()) {
            assert!(a.approx_eq(*b, 1e-12));
        }
    }

    #[test]
    fn order5_matches_dense_every_mode() {
        // Order-5 contraction through the generic fiber cursors shared
        // with TTV: COO and blocked plans both run `ttm_exec`.
        let entries: Vec<(Vec<Coord>, f64)> = (0..600u32)
            .map(|i| {
                (
                    vec![i % 3, (i / 3) % 4, (i / 12) % 5, (i / 60) % 3, (i * 11) % 4],
                    f64::from(i % 7) - 3.0,
                )
            })
            .collect();
        let mut x = CooTensor::from_entries(Shape::new(vec![3, 4, 5, 3, 4]), entries).unwrap();
        x.dedup_sum();
        for n in 0..5 {
            let u = mat_for(&x, n, 3);
            let (_, dense) = ttm_dense(&x, &u, n).unwrap();
            let y = ttm_coo(&x, &u, n, &Ctx::new(4, pasta_par::Schedule::Static)).unwrap();
            assert!(dense_approx_eq(&y.to_coo().to_dense(1 << 13), &dense, 1e-10), "coo mode {n}");
            let h = ttm_hicoo(&x, &u, n, 2, &Ctx::sequential()).unwrap();
            assert!(
                dense_approx_eq(&h.to_scoo().unwrap().to_coo().to_dense(1 << 13), &dense, 1e-10),
                "hicoo mode {n}"
            );
        }
    }

    #[test]
    fn rejects_bad_operands() {
        let x = sample();
        let wrong_rows = DenseMatrix::<f64>::zeros(3, 4);
        assert!(matches!(
            ttm_coo(&x, &wrong_rows, 0, &Ctx::sequential()),
            Err(Error::OperandMismatch { .. })
        ));
        let zero_cols = DenseMatrix::<f64>::zeros(4, 0);
        assert!(ttm_coo(&x, &zero_cols, 0, &Ctx::sequential()).is_err());
        assert!(TtmCooPlan::new(&x, 5).is_err());
    }

    #[test]
    fn low_rank_r16_matches_paper_setting() {
        // The paper uses R = 16 for TTM; sanity-check that configuration.
        let x = sample();
        let u = mat_for(&x, 1, 16);
        let y = ttm_coo(&x, &u, 1, &Ctx::sequential()).unwrap();
        assert_eq!(y.dense_volume(), 16);
        let (_, dense) = ttm_dense(&x, &u, 1).unwrap();
        assert!(dense_approx_eq(&y.to_coo().to_dense(1 << 12), &dense, 1e-10));
    }

    #[test]
    fn ttm_scoo_sparse_mode_matches_chained_dense() {
        // X x_2 U then x_1 W, staying semi-sparse throughout.
        let x = sample();
        let u = mat_for(&x, 2, 3);
        let w = mat_for(&x, 1, 2);
        let ctx = Ctx::sequential();
        let first = ttm_coo(&x, &u, 2, &ctx).unwrap();
        let second = ttm_scoo(&first, &w, 1, &ctx).unwrap();
        assert_eq!(second.dense_modes(), &[1, 2]);

        // Dense oracle: apply both products densely.
        let (shape1, d1) = ttm_dense(&x, &u, 2).unwrap();
        let mid = CooTensor::from_entries(
            shape1.clone(),
            (0..d1.len())
                .filter(|&i| d1[i] != 0.0)
                .map(|i| {
                    // de-linearize
                    let mut rem = i;
                    let mut c = vec![0u32; 3];
                    for m in (0..3).rev() {
                        c[m] = (rem % shape1.dim(m) as usize) as u32;
                        rem /= shape1.dim(m) as usize;
                    }
                    (c, d1[i])
                })
                .collect::<Vec<_>>(),
        )
        .unwrap();
        let (shape2, d2) = ttm_dense(&mid, &w, 1).unwrap();
        assert_eq!(second.shape(), &shape2);
        assert!(crate::dense_ref::dense_approx_eq(&second.to_coo().to_dense(1 << 14), &d2, 1e-10));
    }

    #[test]
    fn ttm_scoo_dense_mode_contraction() {
        // Contract the already-dense mode: (X x_2 U) x_2 W == X x_2 (U W).
        let x = sample();
        let u = mat_for(&x, 2, 4); // 6 -> 4
        let w = DenseMatrix::from_fn(4, 2, |i, j| (i + 2 * j) as f64 * 0.5); // 4 -> 2
        let ctx = Ctx::sequential();
        let first = ttm_coo(&x, &u, 2, &ctx).unwrap();
        let second = ttm_scoo(&first, &w, 2, &ctx).unwrap();

        let uw = pasta_core::linalg::matmul(&u, &w);
        let direct = ttm_coo(&x, &uw, 2, &ctx).unwrap();
        let mut a = second.to_coo();
        a.sort();
        let mut b = direct.to_coo();
        b.sort();
        assert_eq!(a.nnz(), b.nnz());
        for (va, vb) in a.vals().iter().zip(b.vals()) {
            assert!(va.approx_eq(*vb, 1e-10), "{va} vs {vb}");
        }
    }

    #[test]
    fn ttm_scoo_parallel_matches_sequential() {
        let entries: Vec<(Vec<Coord>, f64)> = (0..3000u32)
            .map(|i| (vec![i % 24, (i / 24) % 24, (i * 5) % 24], 1.0 + (i % 3) as f64))
            .collect();
        let mut x = CooTensor::from_entries(Shape::new(vec![24, 24, 24]), entries).unwrap();
        x.dedup_sum();
        let u = mat_for(&x, 2, 4);
        let w = mat_for(&x, 0, 3);
        let first = ttm_coo(&x, &u, 2, &Ctx::sequential()).unwrap();
        let seq = ttm_scoo(&first, &w, 0, &Ctx::sequential()).unwrap();
        let par = ttm_scoo(&first, &w, 0, &Ctx::new(4, pasta_par::Schedule::Dynamic(8))).unwrap();
        let mut a = seq.to_coo();
        a.sort();
        let mut b = par.to_coo();
        b.sort();
        assert_eq!(a.nnz(), b.nnz());
        for (va, vb) in a.vals().iter().zip(b.vals()) {
            assert!(va.approx_eq(*vb, 1e-10));
        }
    }

    #[test]
    fn fourth_order_ttm() {
        let x = CooTensor::<f64>::from_entries(
            Shape::new(vec![3, 4, 3, 4]),
            vec![(vec![0, 1, 2, 0], 1.0), (vec![0, 1, 2, 3], 2.0), (vec![2, 2, 2, 1], 3.0)],
        )
        .unwrap();
        let u = mat_for(&x, 1, 5);
        let y = ttm_coo(&x, &u, 1, &Ctx::sequential()).unwrap();
        let (shape, dense) = ttm_dense(&x, &u, 1).unwrap();
        assert_eq!(y.shape(), &shape);
        assert!(dense_approx_eq(&y.to_coo().to_dense(1 << 12), &dense, 1e-12));
        let h = ttm_hicoo(&x, &u, 1, 2, &Ctx::sequential()).unwrap();
        assert!(dense_approx_eq(&h.to_scoo().unwrap().to_coo().to_dense(1 << 12), &dense, 1e-12));
    }
}
