//! Per-thread workspaces for the fused-expression layer.
//!
//! A fused chain (see [`fused`](crate::fused)) never materializes an
//! intermediate sparse tensor; instead every worker accumulates into a
//! *workspace* — either a dense scratch block indexed by output row
//! (Kjolstad-style dense workspace) or the open-addressing
//! [`SparseAcc`] accumulator when the output is hyper-sparse relative to
//! its index space. [`choose_workspace`] encodes the selection rule;
//! [`FusedWorkspace`] is the tagged union the fused executors accumulate
//! into. Allocations are recorded under
//! [`CounterId::FusedWorkspaceBytes`] in the unified
//! [`pasta_obs`] registry so benches and tests can assert that the fused
//! path materialized nothing.

use crate::pipeline::SparseAcc;
use pasta_core::Value;
use pasta_obs::{counters, CounterId};

/// Which accumulator a fused executor hands each worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkspaceKind {
    /// A zeroed dense scratch block of `rows × width` values, indexed
    /// directly by output row.
    Dense,
    /// The open-addressing [`SparseAcc`]: capacity scales with rows
    /// actually touched, not the index space.
    Sparse,
}

impl WorkspaceKind {
    /// The lowercase label used in logs and cell ids.
    pub fn label(self) -> &'static str {
        match self {
            WorkspaceKind::Dense => "dense",
            WorkspaceKind::Sparse => "sparse",
        }
    }
}

impl std::fmt::Display for WorkspaceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Dense-workspace cap: above this many scratch *values* per worker the
/// dense block stops being an obvious win and the touched-rows estimate
/// decides instead.
pub const DENSE_WS_CAP: usize = 1 << 16;

/// Picks the workspace for a fused chain whose output index space has
/// `rows` rows of `width` values each, fed by `nnz` input non-zeros on
/// `threads` workers.
///
/// Mirrors the MTTKRP dense-vs-sparse privatization rule: dense when the
/// per-worker scratch is absolutely small (`rows·width ≤ 2^16`) or when
/// the output is dense relative to the work (`threads·rows ≤ 4·nnz`, the
/// [`DEFAULT_DENSE_THRESHOLD`](crate::analysis::DEFAULT_DENSE_THRESHOLD)
/// rule); sparse otherwise, so hyper-sparse outputs never allocate the
/// full index space per worker.
pub fn choose_workspace(
    rows: usize,
    width: usize,
    nnz: usize,
    threads: usize,
    dense_threshold: usize,
) -> WorkspaceKind {
    if rows.saturating_mul(width) <= DENSE_WS_CAP {
        return WorkspaceKind::Dense;
    }
    if threads.max(1).saturating_mul(rows) <= dense_threshold.saturating_mul(nnz.max(1)) {
        WorkspaceKind::Dense
    } else {
        WorkspaceKind::Sparse
    }
}

/// One worker's accumulator: a dense scratch block or a [`SparseAcc`].
///
/// Both variants expose the same `row_mut`/`merge`/`drain_into` surface,
/// so fused executors are written once and instantiated per
/// [`WorkspaceKind`].
#[derive(Debug)]
pub enum FusedWorkspace<V> {
    /// Dense scratch: `rows × width` values, row-major.
    Dense {
        /// The scratch block (`rows × width`).
        buf: Vec<V>,
        /// Row width in values.
        width: usize,
    },
    /// Hashed scratch keyed by output row.
    Sparse(SparseAcc<V>),
}

impl<V: Value> FusedWorkspace<V> {
    /// Allocates a workspace of the given kind for `rows × width` output
    /// slots, expecting about `expected_rows` distinct rows to be touched.
    pub fn new(kind: WorkspaceKind, rows: usize, width: usize, expected_rows: usize) -> Self {
        let ws = match kind {
            WorkspaceKind::Dense => {
                FusedWorkspace::Dense { buf: vec![V::ZERO; rows * width], width }
            }
            WorkspaceKind::Sparse => {
                FusedWorkspace::Sparse(SparseAcc::new(width, expected_rows.max(1)))
            }
        };
        counters().add(CounterId::FusedWorkspaceBytes, ws.bytes() as u64);
        ws
    }

    /// Which kind this workspace is.
    pub fn kind(&self) -> WorkspaceKind {
        match self {
            FusedWorkspace::Dense { .. } => WorkspaceKind::Dense,
            FusedWorkspace::Sparse(_) => WorkspaceKind::Sparse,
        }
    }

    /// The workspace's memory footprint in bytes.
    pub fn bytes(&self) -> usize {
        match self {
            FusedWorkspace::Dense { buf, .. } => buf.len() * V::BYTES,
            FusedWorkspace::Sparse(acc) => acc.bytes(),
        }
    }

    /// The `width`-wide accumulator block for output row `row`, zeroed on
    /// first touch.
    #[inline]
    pub fn row_mut(&mut self, row: u32) -> &mut [V] {
        match self {
            FusedWorkspace::Dense { buf, width } => {
                let w = *width;
                &mut buf[row as usize * w..(row as usize + 1) * w]
            }
            FusedWorkspace::Sparse(acc) => acc.row_mut(row),
        }
    }

    /// Folds `other` into `self` (the deterministic tree-reduction merge).
    /// Both sides must share kind and width.
    pub fn merge(&mut self, other: &FusedWorkspace<V>) {
        match (self, other) {
            (FusedWorkspace::Dense { buf, .. }, FusedWorkspace::Dense { buf: ob, .. }) => {
                debug_assert_eq!(buf.len(), ob.len());
                crate::microkernel::add_assign(buf, ob);
            }
            (FusedWorkspace::Sparse(acc), FusedWorkspace::Sparse(oa)) => acc.merge(oa),
            _ => panic!("cannot merge dense and sparse workspaces"),
        }
    }

    /// Adds every accumulated row into a dense output (row-major, same
    /// width).
    pub fn drain_into(&self, out: &mut [V]) {
        match self {
            FusedWorkspace::Dense { buf, .. } => {
                debug_assert_eq!(buf.len(), out.len());
                crate::microkernel::add_assign(out, buf);
            }
            FusedWorkspace::Sparse(acc) => acc.drain_into(out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_when_small_sparse_when_hyper_sparse() {
        // Tiny output: always dense.
        assert_eq!(choose_workspace(100, 16, 10, 8, 4), WorkspaceKind::Dense);
        // Output rows dwarf the nnz feeding them: sparse.
        assert_eq!(choose_workspace(10_000_000, 16, 1_000, 4, 4), WorkspaceKind::Sparse);
        // Dense relative to work even though absolutely large.
        assert_eq!(choose_workspace(1 << 20, 1, 1 << 22, 1, 4), WorkspaceKind::Dense);
    }

    #[test]
    fn workspace_variants_accumulate_identically() {
        for kind in [WorkspaceKind::Dense, WorkspaceKind::Sparse] {
            let mut a = FusedWorkspace::<f64>::new(kind, 8, 3, 4);
            let mut b = FusedWorkspace::<f64>::new(kind, 8, 3, 4);
            a.row_mut(2)[1] += 1.5;
            a.row_mut(5)[0] += 2.0;
            b.row_mut(2)[1] += 0.5;
            b.row_mut(7)[2] += 4.0;
            a.merge(&b);
            let mut out = vec![0.0; 24];
            a.drain_into(&mut out);
            assert_eq!(out[2 * 3 + 1], 2.0);
            assert_eq!(out[5 * 3], 2.0);
            assert_eq!(out[7 * 3 + 2], 4.0);
            assert_eq!(out.iter().filter(|v| **v != 0.0).count(), 3);
            assert_eq!(a.kind(), kind);
            assert!(a.bytes() > 0);
        }
    }

    #[test]
    fn counters_record_workspace_allocation() {
        pasta_obs::set_counting(true);
        let before = counters().get(CounterId::FusedWorkspaceBytes);
        let ws = FusedWorkspace::<f32>::new(WorkspaceKind::Dense, 4, 4, 4);
        let after = counters().get(CounterId::FusedWorkspaceBytes);
        assert!(after >= before + ws.bytes() as u64);
    }
}
