//! Element-wise and scalar operator selectors.

use pasta_core::Value;

/// The four element-wise binary operators of the TEW kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EwOp {
    /// `z = x + y`
    Add,
    /// `z = x − y`
    Sub,
    /// `z = x ∘ y` (Hadamard product)
    Mul,
    /// `z = x ⊘ y` (element-wise division)
    Div,
}

impl EwOp {
    /// Applies the operator to one element pair.
    #[inline]
    pub fn apply<V: Value>(self, x: V, y: V) -> V {
        match self {
            EwOp::Add => x + y,
            EwOp::Sub => x - y,
            EwOp::Mul => x * y,
            EwOp::Div => x / y,
        }
    }

    /// Whether a zero on either side annihilates the result (`Mul`), meaning
    /// the general-pattern output is the pattern *intersection* rather than
    /// the union.
    pub fn is_intersecting(self) -> bool {
        matches!(self, EwOp::Mul)
    }

    /// All four operators.
    pub const ALL: [EwOp; 4] = [EwOp::Add, EwOp::Sub, EwOp::Mul, EwOp::Div];
}

impl std::fmt::Display for EwOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            EwOp::Add => "add",
            EwOp::Sub => "sub",
            EwOp::Mul => "mul",
            EwOp::Div => "div",
        })
    }
}

/// The four tensor-scalar operators of the TS kernel.
///
/// The paper implements TSA and TSM, "sufficient to support all the four
/// operations"; the suite provides all four directly since `Sub`/`Div` cost
/// the same.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TsOp {
    /// `y = x + s` applied to non-zeros.
    Add,
    /// `y = x − s` applied to non-zeros.
    Sub,
    /// `y = x × s`.
    Mul,
    /// `y = x ÷ s`.
    Div,
}

impl TsOp {
    /// Applies the operator to one non-zero.
    #[inline]
    pub fn apply<V: Value>(self, x: V, s: V) -> V {
        match self {
            TsOp::Add => x + s,
            TsOp::Sub => x - s,
            TsOp::Mul => x * s,
            TsOp::Div => x / s,
        }
    }

    /// All four operators.
    pub const ALL: [TsOp; 4] = [TsOp::Add, TsOp::Sub, TsOp::Mul, TsOp::Div];
}

impl std::fmt::Display for TsOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            TsOp::Add => "add",
            TsOp::Sub => "sub",
            TsOp::Mul => "mul",
            TsOp::Div => "div",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ew_semantics() {
        assert_eq!(EwOp::Add.apply(2.0_f32, 3.0), 5.0);
        assert_eq!(EwOp::Sub.apply(2.0_f32, 3.0), -1.0);
        assert_eq!(EwOp::Mul.apply(2.0_f32, 3.0), 6.0);
        assert_eq!(EwOp::Div.apply(3.0_f32, 2.0), 1.5);
        assert!(EwOp::Mul.is_intersecting());
        assert!(!EwOp::Add.is_intersecting());
        assert_eq!(EwOp::ALL.len(), 4);
    }

    #[test]
    fn ts_semantics() {
        assert_eq!(TsOp::Add.apply(2.0_f64, 0.5), 2.5);
        assert_eq!(TsOp::Sub.apply(2.0_f64, 0.5), 1.5);
        assert_eq!(TsOp::Mul.apply(2.0_f64, 0.5), 1.0);
        assert_eq!(TsOp::Div.apply(2.0_f64, 0.5), 4.0);
    }

    #[test]
    fn display_names() {
        assert_eq!(EwOp::Add.to_string(), "add");
        assert_eq!(TsOp::Div.to_string(), "div");
    }
}
