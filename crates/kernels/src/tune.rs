//! Measured autotuning of scheduling parameters.
//!
//! The cost models in [`analysis`](crate::analysis) separate *regimes* with
//! hard-coded constants (dynamic chunk 256, dense-privatization threshold 4,
//! HiCOO block size 128). Within a regime the best setting is
//! tensor-dependent — Liu et al. observe the same for their unified GPU
//! scheduling parameters — so this module runs a small *measured* search per
//! `(kernel, format, tensor-stats bucket)` and persists the winners:
//!
//! - **chunk size** of the dynamic loop schedule (TTV/TTM value loops);
//! - **dense-privatization threshold** `T` in `threads·rows ≤ T·nnz`
//!   (MTTKRP strategy choice), calibrated from a forced dense-vs-sparse
//!   privatized measurement;
//! - **HiCOO block size** `B` (locality/compression trade-off), measured by
//!   rebuilding the blocked plan per candidate and timing only the value
//!   computation.
//!
//! Results are keyed by a coarse [`TensorBucket`] (non-zero scale, density
//! class, fiber balance) rather than by tensor identity, so a table tuned on
//! one dataset generalizes to like-shaped tensors. [`TuneTable`] serializes
//! to `results/TUNE_<hostkey>.json` (written by `hostrun --tune`; see
//! [`host_key`]) with a `host` field recording the measuring machine, so
//! tables from several hosts coexist in one `results/` directory;
//! [`TuneTable::load_host`] falls back to the legacy single-host filename
//! `TUNE_host.json`. Loaded back at bench time,
//! [`Ctx::with_tuning`](crate::Ctx::with_tuning) carries a [`TunedParams`]
//! into the kernels, where the strategy choice and the plan construction
//! consult it instead of the built-in constants.

use crate::analysis::{Kernel, DEFAULT_DENSE_THRESHOLD};
use crate::pipeline::{Ctx, EwOp, FormatKind, StrategyChoice, TsOp};
use crate::{mttkrp_coo_traced, mttkrp_hicoo_traced, TtmCooPlan, TtmHicooPlan};
use crate::{tew_values_into, ts_values_into, TtvCooPlan, TtvHicooPlan};
use pasta_core::{
    seeded_matrix, seeded_vector, CooTensor, DenseMatrix, DenseVector, Error, HiCooTensor, Result,
    TensorStats,
};
use pasta_par::Schedule;
use std::time::Instant;

/// Dynamic-schedule chunk sizes the search measures.
pub const CHUNK_CANDIDATES: [usize; 3] = [64, 256, 1024];

/// HiCOO block sizes the search measures (all within the valid `2..=256`).
pub const BLOCK_CANDIDATES: [u32; 3] = [16, 64, 128];

/// Default HiCOO block size (the paper fixes `B = 128`).
pub const DEFAULT_BLOCK_SIZE: u32 = 128;

/// Timed repetitions per search point (min is taken; one warm-up first).
const TUNE_REPS: usize = 3;

/// Factor rank used by the search (the suite's default `R = 16`).
const TUNE_RANK: usize = 16;

/// The host's last-level cache size in bytes, used by the working-set
/// models (LLC-tiled privatized merge, tile sizing).
///
/// Override with `PASTA_LLC_BYTES`; defaults to a conservative 32 MiB.
pub fn host_llc_bytes() -> usize {
    static LLC: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *LLC.get_or_init(|| {
        std::env::var("PASTA_LLC_BYTES")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&b| b > 0)
            .unwrap_or(32 << 20)
    })
}

/// A filesystem-safe key identifying the measuring host, used to name
/// per-host table files (`results/TUNE_<hostkey>.json`).
///
/// Resolution order: the `HOSTNAME` environment variable, then
/// `/etc/hostname`, then the literal `"host"` — the last of which makes
/// the default filename coincide with the legacy single-host name, so
/// hosts without a name keep reading and writing the old file.
pub fn host_key() -> String {
    let raw = std::env::var("HOSTNAME")
        .ok()
        .filter(|s| !s.trim().is_empty())
        .or_else(|| std::fs::read_to_string("/etc/hostname").ok().filter(|s| !s.trim().is_empty()))
        .unwrap_or_default();
    sanitize_host_key(&raw)
}

/// Reduces a raw host name to `[A-Za-z0-9._-]` (everything else becomes
/// `-`), defaulting to `"host"` when nothing survives.
fn sanitize_host_key(raw: &str) -> String {
    let key: String = raw
        .trim()
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') { c } else { '-' })
        .collect();
    if key.is_empty() {
        "host".into()
    } else {
        key
    }
}

/// Measured scheduling parameters a [`Ctx`] can carry into the kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TunedParams {
    /// Dynamic-schedule chunk size for the parallel value loops.
    pub chunk: usize,
    /// Dense-privatization threshold `T` in `threads·rows ≤ T·nnz`
    /// (see [`choose_mttkrp_strategy_with`](crate::analysis::choose_mttkrp_strategy_with)).
    pub dense_threshold: usize,
    /// HiCOO block size `B` for blocked plans.
    pub block_size: u32,
}

impl Default for TunedParams {
    fn default() -> Self {
        Self {
            chunk: Schedule::DEFAULT_CHUNK,
            dense_threshold: DEFAULT_DENSE_THRESHOLD,
            block_size: DEFAULT_BLOCK_SIZE,
        }
    }
}

/// The coarse tensor-statistics key a tuning entry generalizes over.
///
/// Buckets deliberately quantize hard: the measured search separates
/// settings that differ by integer factors across *shapes* of tensors, not
/// within near-identical ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TensorBucket {
    /// Non-zero scale: 0 `<10⁴`, 1 `<10⁵`, 2 `<10⁶`, 3 `≥10⁶`.
    pub nnz_class: u8,
    /// Density: 0 dense-ish (`≥10⁻³`), 1 sparse (`≥10⁻⁶`), 2 hyper-sparse.
    pub density_class: u8,
    /// Fiber balance: 0 balanced, 1 skewed (some mode's longest fiber is
    /// ≥ 4× that mode's mean fiber length).
    pub balance_class: u8,
}

impl TensorBucket {
    /// Buckets the statistics of a tensor.
    pub fn from_stats(stats: &TensorStats) -> Self {
        let nnz_class = match stats.nnz {
            n if n < 10_000 => 0,
            n if n < 100_000 => 1,
            n if n < 1_000_000 => 2,
            _ => 3,
        };
        let density_class = if stats.density >= 1e-3 {
            0
        } else if stats.density >= 1e-6 {
            1
        } else {
            2
        };
        let skewed = stats.fiber_counts.iter().zip(&stats.max_fiber_lens).any(|(&mf, &max)| {
            mf > 0 && max as f64 >= 4.0 * (stats.nnz as f64 / mf as f64).max(1.0)
        });
        Self { nnz_class, density_class, balance_class: u8::from(skewed) }
    }

    /// The stable string key used in the persisted table.
    pub fn key(&self) -> String {
        let nnz = ["xs", "s", "m", "l"][self.nnz_class.min(3) as usize];
        let den = ["dense", "sparse", "hyper"][self.density_class.min(2) as usize];
        let bal = ["balanced", "skewed"][self.balance_class.min(1) as usize];
        format!("nnz:{nnz}|den:{den}|fib:{bal}")
    }
}

impl std::fmt::Display for TensorBucket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.key())
    }
}

/// One tuned `(kernel, format, bucket)` row with its measured evidence.
#[derive(Debug, Clone, PartialEq)]
pub struct TuneEntry {
    /// The kernel the search measured.
    pub kernel: Kernel,
    /// The input format the search measured.
    pub format: FormatKind,
    /// The [`TensorBucket::key`] of the tensor the entry was tuned on.
    pub bucket: String,
    /// Worker count the measurements ran with.
    pub threads: usize,
    /// The winning parameters.
    pub params: TunedParams,
    /// Time at the default parameters (nanoseconds, min over reps).
    pub baseline_ns: f64,
    /// Time at the winning parameters (nanoseconds, min over reps).
    pub tuned_ns: f64,
}

impl TuneEntry {
    /// Measured speedup of the tuned parameters over the defaults.
    pub fn speedup(&self) -> f64 {
        if self.tuned_ns > 0.0 {
            self.baseline_ns / self.tuned_ns
        } else {
            1.0
        }
    }
}

/// A persisted set of [`TuneEntry`] rows (`results/TUNE_<hostkey>.json`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TuneTable {
    /// [`host_key`] of the machine the entries were measured on (empty in
    /// tables written before host-keying was introduced).
    pub host: String,
    /// All tuned rows.
    pub entries: Vec<TuneEntry>,
}

impl TuneTable {
    /// Looks up the tuned parameters for a kernel × format × bucket.
    pub fn lookup(&self, kernel: Kernel, format: FormatKind, bucket: &str) -> Option<&TuneEntry> {
        self.entries.iter().find(|e| e.kernel == kernel && e.format == format && e.bucket == bucket)
    }

    /// Adds or replaces the entry for `e`'s (kernel, format, bucket).
    pub fn upsert(&mut self, e: TuneEntry) {
        if let Some(slot) = self
            .entries
            .iter_mut()
            .find(|x| x.kernel == e.kernel && x.format == e.format && x.bucket == e.bucket)
        {
            *slot = e;
        } else {
            self.entries.push(e);
        }
    }

    /// Serializes the table (stable field order, newline-terminated).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        let host = if self.host.is_empty() { String::new() } else { sanitize_host_key(&self.host) };
        s.push_str(&format!("  \"host\": \"{host}\",\n"));
        s.push_str(&format!("  \"llc_bytes\": {},\n", host_llc_bytes()));
        s.push_str("  \"entries\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"kernel\": \"{}\", \"format\": \"{}\", \"bucket\": \"{}\", \
                 \"threads\": {}, \"chunk\": {}, \"dense_threshold\": {}, \"block_size\": {}, \
                 \"baseline_ns\": {:.1}, \"tuned_ns\": {:.1}}}{}\n",
                e.kernel,
                e.format.label(),
                e.bucket,
                e.threads,
                e.params.chunk,
                e.params.dense_threshold,
                e.params.block_size,
                e.baseline_ns,
                e.tuned_ns,
                if i + 1 < self.entries.len() { "," } else { "" },
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Parses a table serialized by [`to_json`](Self::to_json).
    ///
    /// # Errors
    ///
    /// Returns [`Error::OperandMismatch`] on malformed JSON or unknown
    /// kernel/format labels.
    pub fn from_json(text: &str) -> Result<Self> {
        use pasta_obs::json;
        let root = json::parse(text).map_err(|e| bad(&e))?;
        let entries = match root.get("entries") {
            Some(json::Json::Arr(items)) => items,
            _ => return Err(bad("missing \"entries\" array")),
        };
        let mut table = TuneTable::default();
        // Legacy (pre-host-keying) tables have no "host" member; they load
        // with an empty host and keep working.
        if let Some(json::Json::Str(h)) = root.get("host") {
            table.host = h.clone();
        }
        for item in entries {
            let sf = |k| item.str_field(k).map_err(|e| bad(&e));
            let nf = |k| item.num_field(k).map_err(|e| bad(&e));
            let kernel = kernel_from_label(sf("kernel")?)?;
            let format = format_from_label(sf("format")?)?;
            let bucket = sf("bucket")?.to_string();
            let params = TunedParams {
                chunk: nf("chunk")? as usize,
                dense_threshold: nf("dense_threshold")? as usize,
                block_size: nf("block_size")? as u32,
            };
            table.entries.push(TuneEntry {
                kernel,
                format,
                bucket,
                threads: nf("threads")? as usize,
                params,
                baseline_ns: nf("baseline_ns")?,
                tuned_ns: nf("tuned_ns")?,
            });
        }
        Ok(table)
    }

    /// Writes the table to `path`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::OperandMismatch`] wrapping the I/O failure.
    pub fn save(&self, path: &std::path::Path) -> Result<()> {
        std::fs::write(path, self.to_json())
            .map_err(|e| bad(&format!("writing {}: {e}", path.display())))
    }

    /// Reads a table from `path`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::OperandMismatch`] on I/O or parse failure.
    pub fn load(path: &std::path::Path) -> Result<Self> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| bad(&format!("reading {}: {e}", path.display())))?;
        Self::from_json(&text)
    }

    /// The host-keyed table path under `dir`: `TUNE_<hostkey>.json`.
    pub fn host_path(dir: &std::path::Path) -> std::path::PathBuf {
        dir.join(format!("TUNE_{}.json", host_key()))
    }

    /// Loads this host's table from `dir`, falling back to the legacy
    /// single-host filename `TUNE_host.json` when no per-host file exists
    /// (so tables written before host-keying keep being picked up).
    ///
    /// # Errors
    ///
    /// Returns [`Error::OperandMismatch`] on I/O or parse failure of
    /// whichever file was selected.
    pub fn load_host(dir: &std::path::Path) -> Result<Self> {
        let keyed = Self::host_path(dir);
        if keyed.exists() {
            return Self::load(&keyed);
        }
        Self::load(&dir.join("TUNE_host.json"))
    }
}

fn bad(what: &str) -> Error {
    Error::OperandMismatch { what: format!("tune table: {what}") }
}

fn kernel_from_label(s: &str) -> Result<Kernel> {
    Kernel::ALL
        .into_iter()
        .find(|k| k.to_string() == s)
        .ok_or_else(|| bad(&format!("unknown kernel {s:?}")))
}

fn format_from_label(s: &str) -> Result<FormatKind> {
    FormatKind::ALL
        .into_iter()
        .find(|f| f.label() == s)
        .ok_or_else(|| bad(&format!("unknown format {s:?}")))
}

/// Minimum of `TUNE_REPS` timed runs (after one warm-up), in nanoseconds.
fn measure_ns<F: FnMut()>(mut f: F) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..TUNE_REPS {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_nanos() as f64);
    }
    best
}

fn ctx_with(threads: usize, params: TunedParams) -> Ctx {
    Ctx::new(threads, Schedule::Dynamic(params.chunk)).with_tuning(params)
}

/// Runs the measured search for one tensor and returns one [`TuneEntry`]
/// per contraction kernel × {COO, HiCOO} plus one COO row each for the
/// streaming kernels (TEW, TS), so the table covers all five kernels.
///
/// Mode 0 is measured (tuning all modes would triple the cost for
/// parameters that are not mode-specific). Plan construction — sorting,
/// blocking, fiber discovery — is pre-processing and excluded from the
/// timings, exactly like the bench harness.
///
/// # Errors
///
/// Returns an error if a plan cannot be built (e.g. first-order tensors).
pub fn tune_tensor(
    x: &CooTensor<f32>,
    stats: &TensorStats,
    threads: usize,
) -> Result<Vec<TuneEntry>> {
    let bucket = TensorBucket::from_stats(stats).key();
    let n = 0usize;
    let mut entries = Vec::new();

    let v: DenseVector<f32> = seeded_vector(x.shape().dim(n) as usize, 7);
    let u: DenseMatrix<f32> = seeded_matrix(x.shape().dim(n) as usize, TUNE_RANK, 9);
    let factors: Vec<DenseMatrix<f32>> = (0..x.order())
        .map(|m| seeded_matrix(x.shape().dim(m) as usize, TUNE_RANK, 11 + m as u64))
        .collect();

    // TEW / TS over COO: chunk-size search on the streaming value loops.
    // (Structure is shared across formats, so the COO row covers the
    // value-pass schedule for every format.)
    {
        let ys: Vec<f32> = x.vals().iter().map(|&v| v * 0.5 + 1.0).collect();
        let mut out = vec![0.0f32; x.nnz()];
        let (params, baseline_ns, tuned_ns) = search_chunk(threads, |ctx| {
            let r = tew_values_into(EwOp::Add, x.vals(), &ys, &mut out, ctx);
            debug_assert!(r.is_ok());
        })?;
        entries.push(TuneEntry {
            kernel: Kernel::Tew,
            format: FormatKind::Coo,
            bucket: bucket.clone(),
            threads,
            params,
            baseline_ns,
            tuned_ns,
        });
    }
    {
        let mut out = vec![0.0f32; x.nnz()];
        let (params, baseline_ns, tuned_ns) = search_chunk(threads, |ctx| {
            let r = ts_values_into(TsOp::Mul, x.vals(), 1.5, &mut out, ctx);
            debug_assert!(r.is_ok());
        })?;
        entries.push(TuneEntry {
            kernel: Kernel::Ts,
            format: FormatKind::Coo,
            bucket: bucket.clone(),
            threads,
            params,
            baseline_ns,
            tuned_ns,
        });
    }

    // TTV / TTM over COO: chunk-size search on a fixed plan.
    {
        let plan = TtvCooPlan::new(x, n)?;
        let mut out = vec![0.0f32; plan.num_fibers()];
        let (params, baseline_ns, tuned_ns) = search_chunk(threads, |ctx| {
            let r = plan.execute_values(&v, &mut out, ctx);
            debug_assert!(r.is_ok());
        })?;
        entries.push(TuneEntry {
            kernel: Kernel::Ttv,
            format: FormatKind::Coo,
            bucket: bucket.clone(),
            threads,
            params,
            baseline_ns,
            tuned_ns,
        });
    }
    {
        let plan = TtmCooPlan::new(x, n)?;
        let mut out = vec![0.0f32; plan.num_fibers() * TUNE_RANK];
        let (params, baseline_ns, tuned_ns) = search_chunk(threads, |ctx| {
            let r = plan.execute_values(&u, &mut out, ctx);
            debug_assert!(r.is_ok());
        })?;
        entries.push(TuneEntry {
            kernel: Kernel::Ttm,
            format: FormatKind::Coo,
            bucket: bucket.clone(),
            threads,
            params,
            baseline_ns,
            tuned_ns,
        });
    }

    // TTV / TTM over HiCOO: block-size search (plan rebuilt per candidate,
    // untimed), then the chunk search at the winning block size.
    {
        let v = &v;
        let entry = search_block_then_chunk(threads, |bs| {
            let plan = TtvHicooPlan::new(x, n, bs)?;
            let mut out = vec![0.0f32; plan.num_fibers()];
            Ok(Box::new(move |ctx: &Ctx| {
                let r = plan.execute_values(v, &mut out, ctx);
                debug_assert!(r.is_ok());
            }))
        })?;
        entries.push(finish(entry, Kernel::Ttv, FormatKind::Hicoo, &bucket, threads));
    }
    {
        let u = &u;
        let entry = search_block_then_chunk(threads, |bs| {
            let plan = TtmHicooPlan::new(x, n, bs)?;
            let mut out = vec![0.0f32; plan.num_fibers() * TUNE_RANK];
            Ok(Box::new(move |ctx: &Ctx| {
                let r = plan.execute_values(u, &mut out, ctx);
                debug_assert!(r.is_ok());
            }))
        })?;
        entries.push(finish(entry, Kernel::Ttm, FormatKind::Hicoo, &bucket, threads));
    }

    // MTTKRP over COO: calibrate the dense-privatization threshold from a
    // forced dense-vs-sparse measurement. Privatization needs at least two
    // workers, so the calibration runs on max(threads, 2) — on a one-core
    // host this still ranks total work (merge traffic vs hash overhead).
    {
        let tm = threads.max(2);
        let rows = x.shape().dim(n) as usize;
        let forced = |threshold: usize| {
            let params = TunedParams { dense_threshold: threshold, ..TunedParams::default() };
            let ctx = ctx_with(tm, params).with_mttkrp(StrategyChoice::Privatized);
            measure_ns(|| {
                let r = mttkrp_coo_traced(x, &factors, n, &ctx);
                debug_assert!(r.is_ok());
            })
        };
        let dense_ns = forced(usize::MAX);
        let sparse_ns = forced(0);
        // Calibrate T so this bucket's dense_cells/nnz ratio lands on the
        // measured winner's side of `threads·rows ≤ T·nnz`.
        let ratio = (tm.saturating_mul(rows)).div_ceil(x.nnz().max(1));
        let dense_threshold = if dense_ns <= sparse_ns {
            ratio.max(DEFAULT_DENSE_THRESHOLD)
        } else {
            ratio.saturating_sub(1).min(DEFAULT_DENSE_THRESHOLD)
        };
        let params = TunedParams { dense_threshold, ..TunedParams::default() };
        let baseline_ns = measure_ns(|| {
            let r = mttkrp_coo_traced(x, &factors, n, &ctx_with(threads, TunedParams::default()));
            debug_assert!(r.is_ok());
        });
        // When calibration keeps the default threshold, the tuned run is
        // the baseline run — don't re-measure noise into the table.
        let tuned_ns = if params == TunedParams::default() {
            baseline_ns
        } else {
            measure_ns(|| {
                let r = mttkrp_coo_traced(x, &factors, n, &ctx_with(threads, params));
                debug_assert!(r.is_ok());
            })
        };
        entries.push(TuneEntry {
            kernel: Kernel::Mttkrp,
            format: FormatKind::Coo,
            bucket: bucket.clone(),
            threads,
            params,
            baseline_ns,
            tuned_ns,
        });
    }

    // MTTKRP over HiCOO: block-size search (conversion untimed).
    {
        let mut best: Option<(u32, f64)> = None;
        let mut baseline_ns = f64::NAN;
        for bs in BLOCK_CANDIDATES {
            let h = HiCooTensor::from_coo(x, bs)?;
            let ctx = ctx_with(threads, TunedParams::default());
            let ns = measure_ns(|| {
                let r = mttkrp_hicoo_traced(&h, &factors, n, &ctx);
                debug_assert!(r.is_ok());
            });
            if bs == DEFAULT_BLOCK_SIZE {
                baseline_ns = ns;
            }
            if best.is_none_or(|(_, b)| ns < b) {
                best = Some((bs, ns));
            }
        }
        let (block_size, tuned_ns) = best.expect("non-empty candidate set");
        if baseline_ns.is_nan() {
            baseline_ns = tuned_ns;
        }
        entries.push(TuneEntry {
            kernel: Kernel::Mttkrp,
            format: FormatKind::Hicoo,
            bucket: bucket.clone(),
            threads,
            params: TunedParams { block_size, ..TunedParams::default() },
            baseline_ns,
            tuned_ns,
        });
    }

    Ok(entries)
}

/// Intermediate result of the HiCOO searches.
struct Searched {
    params: TunedParams,
    baseline_ns: f64,
    tuned_ns: f64,
}

fn finish(
    s: Searched,
    kernel: Kernel,
    format: FormatKind,
    bucket: &str,
    threads: usize,
) -> TuneEntry {
    TuneEntry {
        kernel,
        format,
        bucket: bucket.to_string(),
        threads,
        params: s.params,
        baseline_ns: s.baseline_ns,
        tuned_ns: s.tuned_ns,
    }
}

/// Measures `run` at every chunk candidate; returns winning params plus
/// the default-chunk baseline time.
fn search_chunk<F: FnMut(&Ctx)>(threads: usize, mut run: F) -> Result<(TunedParams, f64, f64)> {
    let mut best: Option<(usize, f64)> = None;
    let mut baseline_ns = f64::NAN;
    for chunk in CHUNK_CANDIDATES {
        let params = TunedParams { chunk, ..TunedParams::default() };
        let ctx = ctx_with(threads, params);
        let ns = measure_ns(|| run(&ctx));
        if chunk == Schedule::DEFAULT_CHUNK {
            baseline_ns = ns;
        }
        if best.is_none_or(|(_, b)| ns < b) {
            best = Some((chunk, ns));
        }
    }
    let (chunk, tuned_ns) = best.expect("non-empty candidate set");
    if baseline_ns.is_nan() {
        baseline_ns = tuned_ns;
    }
    Ok((TunedParams { chunk, ..TunedParams::default() }, baseline_ns, tuned_ns))
}

/// Block-size search with the default chunk, then a chunk search at the
/// winning block size. `build` constructs the (untimed) plan per block
/// size and returns the timed value-computation closure.
fn search_block_then_chunk<'a, B>(threads: usize, mut build: B) -> Result<Searched>
where
    B: FnMut(u32) -> Result<Box<dyn FnMut(&Ctx) + 'a>>,
{
    let mut best: Option<(u32, f64)> = None;
    let mut baseline_ns = f64::NAN;
    for bs in BLOCK_CANDIDATES {
        let mut run = build(bs)?;
        let ctx = ctx_with(threads, TunedParams::default());
        let ns = measure_ns(|| run(&ctx));
        if bs == DEFAULT_BLOCK_SIZE {
            baseline_ns = ns;
        }
        if best.is_none_or(|(_, b)| ns < b) {
            best = Some((bs, ns));
        }
    }
    let (block_size, mut tuned_ns) = best.expect("non-empty candidate set");
    if baseline_ns.is_nan() {
        baseline_ns = tuned_ns;
    }
    // Chunk refinement at the winning block size.
    let mut run = build(block_size)?;
    let mut chunk = Schedule::DEFAULT_CHUNK;
    for c in CHUNK_CANDIDATES {
        if c == Schedule::DEFAULT_CHUNK {
            continue; // already measured as part of the block search
        }
        let params = TunedParams { chunk: c, block_size, ..TunedParams::default() };
        let ns = measure_ns(|| run(&ctx_with(threads, params)));
        if ns < tuned_ns {
            tuned_ns = ns;
            chunk = c;
        }
    }
    Ok(Searched {
        params: TunedParams { chunk, block_size, ..TunedParams::default() },
        baseline_ns,
        tuned_ns,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pasta_core::Shape;

    fn table() -> TuneTable {
        TuneTable {
            host: String::new(),
            entries: vec![
                TuneEntry {
                    kernel: Kernel::Ttv,
                    format: FormatKind::Coo,
                    bucket: "nnz:s|den:sparse|fib:balanced".into(),
                    threads: 4,
                    params: TunedParams { chunk: 1024, ..TunedParams::default() },
                    baseline_ns: 1000.0,
                    tuned_ns: 800.0,
                },
                TuneEntry {
                    kernel: Kernel::Mttkrp,
                    format: FormatKind::Hicoo,
                    bucket: "nnz:l|den:hyper|fib:skewed".into(),
                    threads: 4,
                    params: TunedParams { block_size: 32, dense_threshold: 9, chunk: 64 },
                    baseline_ns: 5.5,
                    tuned_ns: 4.5,
                },
            ],
        }
    }

    #[test]
    fn json_round_trips() {
        let t = table();
        let parsed = TuneTable::from_json(&t.to_json()).unwrap();
        assert_eq!(parsed, t);
    }

    #[test]
    fn lookup_and_upsert() {
        let mut t = table();
        let hit = t
            .lookup(Kernel::Ttv, FormatKind::Coo, "nnz:s|den:sparse|fib:balanced")
            .expect("present");
        assert_eq!(hit.params.chunk, 1024);
        assert!((hit.speedup() - 1.25).abs() < 1e-12);
        assert!(t.lookup(Kernel::Ttv, FormatKind::Coo, "nnz:l|den:hyper|fib:skewed").is_none());

        let mut e = t.entries[0].clone();
        e.params.chunk = 64;
        t.upsert(e);
        assert_eq!(t.entries.len(), 2, "upsert replaces, not appends");
        assert_eq!(
            t.lookup(Kernel::Ttv, FormatKind::Coo, "nnz:s|den:sparse|fib:balanced")
                .unwrap()
                .params
                .chunk,
            64
        );
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(TuneTable::from_json("").is_err());
        assert!(TuneTable::from_json("{}").is_err());
        assert!(TuneTable::from_json("{\"entries\": [{\"kernel\": \"NOPE\"}]}").is_err());
        assert!(TuneTable::from_json("{\"entries\": []} garbage").is_err());
        let ok = TuneTable::from_json("{\"entries\": []}").unwrap();
        assert!(ok.entries.is_empty());
    }

    #[test]
    fn buckets_quantize_stats() {
        let small = TensorStats {
            order: 3,
            dims: vec![10, 10, 10],
            nnz: 500,
            density: 0.5,
            fiber_counts: vec![100, 100, 100],
            max_fiber_lens: vec![5, 5, 5],
        };
        let b = TensorBucket::from_stats(&small);
        assert_eq!(b.key(), "nnz:xs|den:dense|fib:balanced");

        let skewed = TensorStats {
            order: 3,
            dims: vec![1 << 20, 1 << 20, 1 << 20],
            nnz: 2_000_000,
            density: 1e-12,
            fiber_counts: vec![1_000, 1_000, 1_000],
            max_fiber_lens: vec![100_000, 10, 10],
        };
        let b = TensorBucket::from_stats(&skewed);
        assert_eq!(b.key(), "nnz:l|den:hyper|fib:skewed");
        assert_ne!(TensorBucket::from_stats(&small), TensorBucket::from_stats(&skewed));
    }

    #[test]
    fn llc_default_is_positive() {
        assert!(host_llc_bytes() > 0);
    }

    #[test]
    fn host_field_round_trips_and_legacy_tables_load() {
        let mut t = table();
        t.host = "bench-box-01".into();
        let parsed = TuneTable::from_json(&t.to_json()).unwrap();
        assert_eq!(parsed, t);
        // A legacy (pre-host-keying) serialization has no "host" member.
        let legacy = "{\n  \"entries\": []\n}\n";
        let old = TuneTable::from_json(legacy).unwrap();
        assert!(old.host.is_empty());
    }

    #[test]
    fn host_keys_are_filesystem_safe() {
        assert_eq!(sanitize_host_key("bench-box-01"), "bench-box-01");
        assert_eq!(sanitize_host_key("  node/7:a b\n"), "node-7-a-b");
        assert_eq!(sanitize_host_key(""), "host");
        assert_eq!(sanitize_host_key("\n"), "host");
        let key = host_key();
        assert!(!key.is_empty());
        assert!(key.chars().all(|c| c.is_ascii_alphanumeric() || "._-".contains(c)));
    }

    #[test]
    fn load_host_prefers_keyed_file_and_falls_back_to_legacy() {
        let dir = std::env::temp_dir().join(format!("pasta_tune_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // Only the legacy file exists: load_host falls back to it.
        let mut legacy = table();
        legacy.host = String::new();
        legacy.save(&dir.join("TUNE_host.json")).unwrap();
        let loaded = TuneTable::load_host(&dir).unwrap();
        assert_eq!(loaded.entries.len(), legacy.entries.len());
        // The host-keyed file, once present, wins over the legacy one.
        let mut keyed = table();
        keyed.host = host_key();
        keyed.entries.truncate(1);
        keyed.save(&TuneTable::host_path(&dir)).unwrap();
        let loaded = TuneTable::load_host(&dir).unwrap();
        assert_eq!(loaded.entries.len(), 1);
        assert_eq!(loaded.host, host_key());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tune_tensor_produces_entries_per_kernel_format() {
        let entries: Vec<(Vec<u32>, f32)> = (0..4000u32)
            .map(|i| (vec![i % 37, (i * 7) % 41, (i * 13) % 43], 1.0 + (i % 5) as f32))
            .collect();
        let mut x = CooTensor::from_entries(Shape::new(vec![37, 41, 43]), entries).unwrap();
        x.dedup_sum();
        let stats = TensorStats::compute(&x);
        let got = tune_tensor(&x, &stats, 2).unwrap();
        assert_eq!(got.len(), 8);
        // All five kernels are covered (TEW/TS added by the fused-
        // expression PR so decomposition runs can load a full table).
        for k in Kernel::ALL {
            assert!(got.iter().any(|e| e.kernel == k), "missing {k:?}");
        }
        let bucket = TensorBucket::from_stats(&stats).key();
        for e in &got {
            assert_eq!(e.bucket, bucket);
            assert!(e.baseline_ns > 0.0 && e.tuned_ns > 0.0);
            // Search entries pick an argmin over candidates that include
            // the default, so they can never lose to the baseline. The
            // MTTKRP/COO threshold is *calibrated* (measured under forced
            // strategies), not searched, so only the searches are bounded.
            let calibrated = e.kernel == Kernel::Mttkrp && e.format == FormatKind::Coo;
            if !calibrated {
                assert!(e.tuned_ns <= e.baseline_ns + 1.0, "argmin lost: {e:?}");
            }
            assert!(CHUNK_CANDIDATES.contains(&e.params.chunk));
            if e.format == FormatKind::Hicoo {
                assert!(BLOCK_CANDIDATES.contains(&e.params.block_size));
            }
        }
        // The table built from these entries round-trips.
        let t = TuneTable { host: String::new(), entries: got };
        assert_eq!(TuneTable::from_json(&t.to_json()).unwrap(), t);
    }
}
