//! Working-set validation of the LLC-tiled privatized-reduction merge.
//!
//! `mttkrp`'s `merge_privatized_dense` folds every worker's private dense
//! accumulator into the output tile-by-tile, sized so one destination tile
//! plus one source tile stay within half the last-level cache
//! (`tile = LLC / (4 · BYTES)`, the formula in `merge_tile_len`). This test
//! replays both merge orders' exact access streams through the
//! `pasta-memsim` cache model and checks the tiling removes the repeated
//! destination evictions the old buffer-major order paid: with buffers
//! larger than the cache, the destination is re-fetched from DRAM once per
//! buffer pass under buffer-major order, but stays resident across all
//! buffers under tile-major order.

use pasta_memsim::{Cache, CacheConfig};

const VAL_BYTES: u64 = 4; // f32 accumulators
const LINE: usize = 64;

/// Simulated LLC: small enough that the test arrays exceed it the way real
/// accumulators exceed a real LLC.
const LLC_BYTES: usize = 64 * 1024;

/// The tile-length formula mirrored from `merge_tile_len` (values, not
/// bytes): destination tile + source tile ≤ half the cache.
fn tile_len() -> usize {
    LLC_BYTES / (4 * VAL_BYTES as usize)
}

/// Streams one `add_assign(dst[lo..hi], buf[lo..hi])` through the model.
fn stream_add(cache: &mut Cache, dst_base: u64, buf_base: u64, lo: usize, hi: usize) {
    let mut a = lo;
    while a < hi {
        cache.access(dst_base + (a as u64) * VAL_BYTES);
        cache.access(buf_base + (a as u64) * VAL_BYTES);
        a += LINE / VAL_BYTES as usize; // one access per touched line
    }
}

/// Disjoint base addresses for the output and each private buffer.
fn bases(len: usize, bufs: usize) -> (u64, Vec<u64>) {
    let span = (len as u64) * VAL_BYTES + 4096;
    (0, (0..bufs).map(|b| (b as u64 + 1) * span).collect())
}

fn buffer_major_misses(len: usize, bufs: usize) -> u64 {
    let (dst, srcs) = bases(len, bufs);
    let mut cache = Cache::new(CacheConfig::with_size(LLC_BYTES));
    for &src in &srcs {
        stream_add(&mut cache, dst, src, 0, len);
    }
    cache.stats().miss_bytes(LINE)
}

fn tile_major_misses(len: usize, bufs: usize) -> u64 {
    let (dst, srcs) = bases(len, bufs);
    let mut cache = Cache::new(CacheConfig::with_size(LLC_BYTES));
    let tile = tile_len();
    let mut lo = 0;
    while lo < len {
        let hi = (lo + tile).min(len);
        for &src in &srcs {
            stream_add(&mut cache, dst, src, lo, hi);
        }
        lo = hi;
    }
    cache.stats().miss_bytes(LINE)
}

#[test]
fn tiled_merge_keeps_destination_resident() {
    // Accumulators 8× the LLC, 4 workers — the regime the tiling targets.
    let len = 8 * LLC_BYTES / VAL_BYTES as usize;
    let bufs = 4;
    let tiled = tile_major_misses(len, bufs);
    let untiled = buffer_major_misses(len, bufs);
    // Compulsory traffic both orders must pay: every buffer read once,
    // the destination fetched once.
    let compulsory = ((bufs as u64) + 1) * (len as u64) * VAL_BYTES;
    assert!(tiled < untiled, "tiling should reduce merge traffic: tiled={tiled} untiled={untiled}");
    // Buffer-major order re-fetches the destination per buffer pass
    // (~2·len·B·bufs with write-allocate); tile-major order must stay close
    // to compulsory — within 25% slack for conflict misses.
    assert!(
        (tiled as f64) < 1.25 * compulsory as f64,
        "tiled merge should be near-compulsory: tiled={tiled} compulsory={compulsory}"
    );
    assert!(
        (untiled as f64) > 1.5 * compulsory as f64,
        "buffer-major order should pay repeated destination refetches: \
         untiled={untiled} compulsory={compulsory}"
    );
}

#[test]
fn small_outputs_are_one_tile() {
    // Outputs that fit in a tile degenerate to the old single-pass merge:
    // both orders produce identical traffic.
    let len = tile_len() / 2;
    assert_eq!(tile_major_misses(len, 4), buffer_major_misses(len, 4));
}
