//! Property tests for the runtime-dispatched SIMD microkernels.
//!
//! The dispatch contract under test (see `microkernel`'s module docs):
//!
//! - `mul_assign` / `add_assign` / `axpy` are *lane-local* — the vector
//!   bodies must be bit-identical to the portable scalar bodies for every
//!   length, including the unaligned tails;
//! - `gather_dot` reassociates its reduction into fixed-width lanes, so it
//!   carries a ULP budget instead of bit-identity;
//! - the `PASTA_SIMD` environment override and `force_simd` pin dispatch,
//!   which the CI gate uses to run this whole suite under both paths.
//!
//! Lengths are drawn from `0..64` so every combination of full 8/4-lane
//! blocks and scalar tail (0–7 elements) is exercised.

use pasta_core::Coord;
use pasta_kernels::microkernel::{add_assign_at, axpy_at, gather_dot_at, mul_assign_at};
use pasta_kernels::{force_simd, simd_level, SimdLevel};
use proptest::prelude::ProptestConfig;

/// ULP distance between two f32s of the same sign (test values are finite).
fn ulp_f32(a: f32, b: f32) -> u64 {
    let to_ordered = |x: f32| {
        let bits = x.to_bits() as i32;
        if bits < 0 {
            i32::MIN.wrapping_sub(bits)
        } else {
            bits
        }
    };
    (to_ordered(a) as i64 - to_ordered(b) as i64).unsigned_abs()
}

/// The budget mirrored from the conformance matrix's SIMD gather cells.
const GATHER_ULPS: u64 = 256;

const LEVELS: [SimdLevel; 2] = [SimdLevel::Scalar, SimdLevel::Avx2Fma];

/// `force_simd` is process-global and the test harness runs tests on
/// parallel threads, so every test that touches the override serializes
/// through this lock (and restores auto-detection before releasing it).
static OVERRIDE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

proptest::proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Element-wise multiply: bit-identical across dispatch levels, f32.
    #[test]
    fn prop_mul_assign_bit_identical_f32(
        seed in proptest::collection::vec((-100.0f32..100.0, -4.0f32..4.0), 0..64),
    ) {
        let base: Vec<f32> = seed.iter().map(|p| p.0).collect();
        let row: Vec<f32> = seed.iter().map(|p| p.1).collect();
        let mut want = base.clone();
        mul_assign_at(SimdLevel::Scalar, &mut want, &row);
        let mut got = base;
        mul_assign_at(SimdLevel::Avx2Fma, &mut got, &row);
        proptest::prop_assert_eq!(
            got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            want.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    /// Element-wise add: bit-identical across dispatch levels, f64.
    #[test]
    fn prop_add_assign_bit_identical_f64(
        seed in proptest::collection::vec((-1e6f64..1e6, -1e-3f64..1e-3), 0..64),
    ) {
        let base: Vec<f64> = seed.iter().map(|p| p.0).collect();
        let row: Vec<f64> = seed.iter().map(|p| p.1).collect();
        let mut want = base.clone();
        add_assign_at(SimdLevel::Scalar, &mut want, &row);
        let mut got = base;
        add_assign_at(SimdLevel::Avx2Fma, &mut got, &row);
        proptest::prop_assert_eq!(
            got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            want.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    /// axpy: bit-identical across dispatch levels for both value types —
    /// the AVX2 body multiplies then adds (no FMA contraction) precisely so
    /// this property holds.
    #[test]
    fn prop_axpy_bit_identical(
        seed in proptest::collection::vec((-50.0f32..50.0, -2.0f32..2.0), 0..64),
        a in -3.0f32..3.0,
    ) {
        let base: Vec<f32> = seed.iter().map(|p| p.0).collect();
        let row: Vec<f32> = seed.iter().map(|p| p.1).collect();
        let mut want32 = base.clone();
        axpy_at(SimdLevel::Scalar, &mut want32, a, &row);
        let mut got32 = base.clone();
        axpy_at(SimdLevel::Avx2Fma, &mut got32, a, &row);
        proptest::prop_assert_eq!(
            got32.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            want32.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );

        let base64: Vec<f64> = base.iter().map(|&v| v as f64).collect();
        let row64: Vec<f64> = row.iter().map(|&v| v as f64).collect();
        let mut want64 = base64.clone();
        axpy_at(SimdLevel::Scalar, &mut want64, a as f64, &row64);
        let mut got64 = base64;
        axpy_at(SimdLevel::Avx2Fma, &mut got64, a as f64, &row64);
        proptest::prop_assert_eq!(
            got64.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            want64.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    /// gather_dot: the fixed-lane reduction stays within the conformance
    /// budget of the single-accumulator scalar body. Terms are kept
    /// positive so the ULP comparison is meaningful (mixed signs cancel
    /// and make *any* reassociated sum arbitrarily far in relative terms).
    #[test]
    fn prop_gather_dot_within_budget(
        seed in proptest::collection::vec((0.1f32..10.0, 0u8..32), 0..64),
        vlen in 1usize..48,
    ) {
        let vals: Vec<f32> = seed.iter().map(|p| p.0).collect();
        let v: Vec<f32> = (0..vlen).map(|i| 0.5 + (i as f32) * 0.125).collect();
        let idx: Vec<Coord> = seed.iter().map(|p| Coord::from(p.1) % vlen as Coord).collect();
        let want = gather_dot_at(SimdLevel::Scalar, &vals, &idx, &v, 0..vals.len());
        let got = gather_dot_at(SimdLevel::Avx2Fma, &vals, &idx, &v, 0..vals.len());
        proptest::prop_assert!(
            ulp_f32(got, want) <= GATHER_ULPS,
            "scalar={} simd={} ulps={}", want, got, ulp_f32(got, want)
        );
    }

    /// Pinned-level entry points never depend on the global override: for
    /// any forced global level, `*_at` still computes its own level's
    /// result.
    #[test]
    fn prop_pinned_levels_ignore_global_override(
        seed in proptest::collection::vec(0.5f32..2.0, 0..64),
        global in proptest::sample::select(vec![0usize, 1]),
    ) {
        let guard = OVERRIDE_LOCK.lock().unwrap();
        force_simd(Some(LEVELS[global]));
        let row = seed.clone();
        let mut a = seed.clone();
        mul_assign_at(SimdLevel::Scalar, &mut a, &row);
        let mut b = seed.clone();
        mul_assign_at(SimdLevel::Avx2Fma, &mut b, &row);
        force_simd(None);
        drop(guard);
        proptest::prop_assert_eq!(
            a.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            b.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }
}

/// The `PASTA_SIMD` environment override resolves as documented. The CI
/// gate runs the test suite twice — default and `PASTA_SIMD=scalar` — so
/// both arms of this assertion are exercised on AVX2 hosts.
#[test]
fn env_override_resolves() {
    let _guard = OVERRIDE_LOCK.lock().unwrap();
    match std::env::var("PASTA_SIMD").as_deref() {
        Ok("scalar") => assert_eq!(simd_level(), SimdLevel::Scalar),
        _ => {
            // Auto-detection: whatever was picked must round-trip through
            // force_simd and never exceed what the host supports.
            let auto = simd_level();
            force_simd(Some(SimdLevel::Scalar));
            assert_eq!(simd_level(), SimdLevel::Scalar);
            force_simd(None);
            assert_eq!(simd_level(), auto);
        }
    }
}
