#!/usr/bin/env bash
# Local CI gate: the same steps .github/workflows/ci.yml runs.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --workspace --release"
cargo build --workspace --release

echo "==> cargo test --workspace"
cargo test --workspace -q

echo "==> cargo test --workspace (PASTA_SIMD=scalar, forced portable microkernels)"
PASTA_SIMD=scalar cargo test --workspace -q

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --no-deps (rustdoc warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps

echo "==> MTTKRP bench smoke (strategy dispatch, untimed)"
PASTA_BENCH_SCALE=0.02 cargo bench -p pasta-bench --bench mttkrp -- --test

echo "==> Tuner smoke (--tune on s1 completes and round-trips its JSON)"
cargo run --release -q -p pasta-bench --bin hostrun -- --tune s1 0.02 2 > /dev/null

echo "==> Fused e2e smoke (CPD-ALS + Tucker ablation + graph-lowered CPD rows)"
E2E_OUT=$(cargo run --release -q -p pasta-bench --bin hostrun -- --e2e s1 0.02 2)
grep -c "TUCKER-HOOI" <<< "$E2E_OUT" > /dev/null
grep -c "CPD-GRAPH" <<< "$E2E_OUT" > /dev/null

echo "==> Expression-graph proptests under PASTA_TRACE=1 (tracing must not perturb lowering)"
PASTA_TRACE=1 cargo test -q -p pasta --test expr_props

echo "==> Traced hostrun smoke (valid chrome trace + advisory regression gate)"
cargo run --release -q -p pasta-bench --bin hostrun -- --trace \
  --check-regress results/BENCH_host.json --regress-advisory s1 0.02 2 > /dev/null
cargo run --release -q -p pasta-bench --bin hostrun -- --check-trace results/TRACE_host.json

echo "==> Serve loadgen smoke (seeded stream, warm-pass cache hits, replay round-trip)"
cargo run --release -q -p pasta-bench --bin servebench -- \
  --passes 2 --count 60 --scale 0.01 --check --write-reqs results/SERVE_ci.reqs > /dev/null
cargo run --release -q -p pasta-bench --bin servebench -- \
  --reqs results/SERVE_ci.reqs --passes 2 --scale 0.01 --check > /dev/null
cargo run --release -q -p pasta-bench --bin servebench -- \
  --passes 1 --count 40 --scale 0.01 --no-cache --check > /dev/null
rm -f results/SERVE_ci.reqs

echo "==> Conformance matrix (quick tier + selftest)"
cargo run --release -q -p pasta-conformance -- quick
cargo run --release -q -p pasta-conformance -- selftest

echo "==> Conformance quick under PASTA_TRACE=1 (tracing must not perturb numerics)"
PASTA_TRACE=1 cargo run --release -q -p pasta-conformance -- quick

echo "==> CI gate passed"
