//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no crates-registry access, so this vendored crate
//! implements the subset of proptest the suite's integration tests use:
//! the [`proptest!`] macro (with `#![proptest_config(...)]`), integer/float
//! range strategies, tuple strategies, [`collection::vec`],
//! [`sample::select`], and the `prop_assert*` macros.
//!
//! Differences from upstream: the `proptest!` macro does not shrink (a
//! failing case panics with the generated inputs available via the
//! assertion message), and the RNG is seeded deterministically from the
//! test name so failures reproduce exactly across runs. The [`shrink`]
//! module exposes standalone delta-debugging primitives for harnesses that
//! minimize failures themselves.

pub mod test_runner {
    //! Test configuration and the deterministic RNG driving generation.

    /// Per-test configuration; only `cases` is honored.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` generated inputs per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    /// SplitMix64 RNG, seeded from the test name for reproducibility.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates an RNG whose stream is a pure function of `name`.
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the test name.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self { state: h }
        }

        /// The next raw 64 bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// A uniform `f64` in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// A uniform `usize` in `[0, bound)`; `bound` must be positive.
        pub fn below(&mut self, bound: usize) -> usize {
            assert!(bound > 0);
            (self.next_u64() % bound as u64) as usize
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and range/tuple strategy implementations.

    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating values of `Value`.
    ///
    /// Upstream proptest separates strategies from value trees to support
    /// shrinking; this shim only generates.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values with `f` (upstream's `prop_map`).
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { source: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, T, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.source.generate(rng))
        }
    }

    macro_rules! impl_range_strategy_int {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + (rng.next_u64() % span) as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.next_f64() as f32 * (self.end - self.start)
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A strategy producing `Vec`s whose length is drawn from `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// Generates vectors of values from `elem` with a length in `len`
    /// (half-open, like upstream's `SizeRange` from a `Range`).
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = self.len.end - self.len.start;
            let n = self.len.start + rng.below(span.max(1));
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod sample {
    //! Sampling strategies over explicit value lists.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A strategy choosing uniformly from a fixed list.
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// Chooses one of `options` uniformly.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len())].clone()
        }
    }
}

pub mod shrink {
    //! Standalone failure-minimization primitives.
    //!
    //! Upstream proptest shrinks through per-strategy value trees; this shim
    //! instead offers the two operations a harness needs to minimize a
    //! failing case it already holds: set minimization by delta debugging
    //! ([`ddmin`]) and scalar minimization by bisection ([`shrink_int`]).
    //! Both take a `fails` predicate that re-runs the failing check on a
    //! candidate and returns `true` when the failure persists.

    /// Minimizes `items` to a subsequence on which `fails` still returns
    /// `true`, using Zeller's ddmin: remove chunks at progressively finer
    /// granularity until no single chunk can be dropped.
    ///
    /// `fails(items)` must be `true` on entry; the result (possibly empty)
    /// preserves the original relative order and still fails.
    pub fn ddmin<T, F>(items: &[T], mut fails: F) -> Vec<T>
    where
        T: Clone,
        F: FnMut(&[T]) -> bool,
    {
        let mut cur: Vec<T> = items.to_vec();
        debug_assert!(fails(&cur), "ddmin requires a failing starting point");
        if fails(&[]) {
            return Vec::new();
        }
        let mut n = 2usize;
        while cur.len() >= 2 {
            let chunk = cur.len().div_ceil(n);
            let mut reduced = false;
            let mut start = 0;
            while start < cur.len() {
                let end = (start + chunk).min(cur.len());
                let mut cand: Vec<T> = Vec::with_capacity(cur.len() - (end - start));
                cand.extend_from_slice(&cur[..start]);
                cand.extend_from_slice(&cur[end..]);
                if fails(&cand) {
                    cur = cand;
                    n = n.saturating_sub(1).max(2);
                    reduced = true;
                    break;
                }
                start = end;
            }
            if !reduced {
                if n >= cur.len() {
                    break;
                }
                n = (2 * n).min(cur.len());
            }
        }
        cur
    }

    /// Minimizes a scalar toward `lo` while `fails` holds.
    ///
    /// `fails(hi)` must be `true` on entry. Bisects toward `lo` while the
    /// midpoint still fails, then takes unit steps; the failure need not be
    /// monotone in the scalar — the result is simply the smallest failing
    /// value this greedy walk reaches, never below `lo`.
    pub fn shrink_int<F>(lo: u64, hi: u64, mut fails: F) -> u64
    where
        F: FnMut(u64) -> bool,
    {
        debug_assert!(lo <= hi);
        let mut cur = hi;
        while cur > lo {
            let mid = lo + (cur - lo) / 2;
            if fails(mid) {
                cur = mid;
            } else if fails(cur - 1) {
                cur -= 1;
            } else {
                break;
            }
        }
        cur
    }
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs `body` over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[doc $($doc:tt)*])*
      #[test]
      fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[doc $($doc)*])*
        #[test]
        fn $name() {
            let __config = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for __case in 0..__config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

pub mod prelude {
    //! Glob-import surface matching `proptest::prelude::*`.

    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};

    /// Namespace alias matching upstream's `prelude::prop`.
    pub mod prop {
        pub use crate::{collection, sample, strategy};
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_draw_in_range() {
        let mut rng = crate::test_runner::TestRng::deterministic("t");
        for _ in 0..200 {
            let v = Strategy::generate(&(3u32..10), &mut rng);
            assert!((3..10).contains(&v));
            let (a, b) = Strategy::generate(&(0u32..4, -2i32..2), &mut rng);
            assert!(a < 4 && (-2..2).contains(&b));
            let xs = Strategy::generate(&crate::collection::vec(0u32..5, 1..7), &mut rng);
            assert!(!xs.is_empty() && xs.len() < 7 && xs.iter().all(|&x| x < 5));
            let s = Strategy::generate(&crate::sample::select(vec![1, 2, 3]), &mut rng);
            assert!((1..=3).contains(&s));
        }
    }

    #[test]
    fn ddmin_finds_minimal_pair() {
        // Failure requires both a 3 and a 7 somewhere in the slice.
        let items = vec![9, 3, 1, 4, 7, 7, 2, 3, 8];
        let fails = |s: &[i32]| s.contains(&3) && s.contains(&7);
        let min = crate::shrink::ddmin(&items, fails);
        assert_eq!(min.len(), 2);
        assert!(min.contains(&3) && min.contains(&7));
    }

    #[test]
    fn ddmin_handles_empty_minimum() {
        // Failure independent of the items: everything can go.
        let min = crate::shrink::ddmin(&[1, 2, 3, 4], |_| true);
        assert!(min.is_empty());
    }

    #[test]
    fn ddmin_single_element() {
        let min = crate::shrink::ddmin(&[5, 6, 7, 8, 9], |s| s.contains(&8));
        assert_eq!(min, vec![8]);
    }

    #[test]
    fn shrink_int_finds_threshold() {
        // Monotone predicate: fails for v >= 37.
        assert_eq!(crate::shrink::shrink_int(0, 1000, |v| v >= 37), 37);
        // Already at the floor.
        assert_eq!(crate::shrink::shrink_int(5, 5, |_| true), 5);
        // Non-monotone: walk stops at a local minimum but the result fails.
        let r = crate::shrink::shrink_int(0, 100, |v| v == 100 || v == 50);
        assert!(r == 50);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: generated pairs satisfy their range bounds.
        #[test]
        fn macro_generates_in_bounds(
            xs in prop::collection::vec((0u32..20, 1i32..5), 0..10),
            k in 0usize..3,
        ) {
            prop_assert!(k < 3);
            for (a, b) in xs {
                prop_assert!(a < 20);
                prop_assert_eq!(b.signum(), 1);
            }
        }
    }
}
