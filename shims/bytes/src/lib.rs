//! Offline stand-in for the `bytes` crate.
//!
//! The build container has no access to a crates registry, so the workspace
//! vendors the tiny [`Buf`]/[`BufMut`] subset that `pasta-core::io` actually
//! uses: little-endian integer/float reads from `&[u8]` and appends to
//! `Vec<u8>`. The semantics mirror `bytes` 1.x for those methods; nothing
//! else is provided.

/// Read access to a contiguous byte buffer, consuming from the front.
pub trait Buf {
    /// The number of bytes left to consume.
    fn remaining(&self) -> usize;

    /// Consumes `dst.len()` bytes into `dst`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Consumes one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Consumes a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Consumes a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Consumes a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Consumes a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_le_bytes(self.get_u32_le().to_le_bytes())
    }

    /// Consumes a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_le_bytes(self.get_u64_le().to_le_bytes())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "buffer underflow");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

/// Append access to a growable byte buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut out = Vec::new();
        out.put_u8(7);
        out.put_u16_le(0xBEEF);
        out.put_u32_le(0xDEAD_BEEF);
        out.put_u64_le(0x0123_4567_89AB_CDEF);
        out.put_f32_le(1.5);
        out.put_f64_le(-2.25);
        out.put_slice(b"xy");

        let mut buf = &out[..];
        assert_eq!(buf.remaining(), 1 + 2 + 4 + 8 + 4 + 8 + 2);
        assert_eq!(buf.get_u8(), 7);
        assert_eq!(buf.get_u16_le(), 0xBEEF);
        assert_eq!(buf.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(buf.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(buf.get_f32_le(), 1.5);
        assert_eq!(buf.get_f64_le(), -2.25);
        let mut tail = [0u8; 2];
        buf.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xy");
        assert_eq!(buf.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut buf: &[u8] = &[1u8];
        let mut dst = [0u8; 2];
        buf.copy_to_slice(&mut dst);
    }
}
