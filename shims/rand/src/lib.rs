//! Offline stand-in for the `rand` crate.
//!
//! The build container has no crates-registry access, so this vendored crate
//! provides the small deterministic-RNG surface the tensor generators use:
//! [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`], plus
//! [`Rng::gen`] and [`Rng::gen_range`]. The generator is xoshiro256++ seeded
//! through SplitMix64 — a different stream than upstream `rand`'s StdRng
//! (which is version-unstable anyway), but with the same API contract:
//! deterministic per seed, uniform over the requested range.

/// Seeding support for reproducible generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform sampling from the unit interval, used by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from the type's standard distribution.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types that support uniform range sampling via [`Rng::gen_range`].
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws a uniform value in `[lo, hi)`.
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_unsigned {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty range in gen_range");
                let span = (hi - lo) as u64;
                // Multiply-shift rejection-free mapping is fine for benchmark
                // seeding; bias is < 2^-32 for the spans used here.
                lo + ((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_uniform_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_uniform_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty range in gen_range");
                let span = (hi as i64 - lo as i64) as u64;
                lo + ((rng.next_u64() % span) as $u as $t)
            }
        }
    )*};
}

impl_uniform_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleUniform for f64 {
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "empty range in gen_range");
        lo + f64::sample_standard(rng) * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "empty range in gen_range");
        lo + f32::sample_standard(rng) * (hi - lo)
    }
}

/// The random-generator trait: raw 64-bit output plus typed helpers.
pub trait Rng {
    /// The next raw 64 bits from the stream.
    fn next_u64(&mut self) -> u64;

    /// Draws one value from the type's standard distribution
    /// (`f64`/`f32` uniform in `[0, 1)`, integers full-range).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws a uniform value from `range` (half-open).
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range.start, range.end)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256++ generator, seeded through SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self { s: [next(), next(), next(), next()] }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_interval_and_ranges() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..400 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
