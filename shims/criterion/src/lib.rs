//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no crates-registry access, so the workspace
//! vendors a minimal bench harness with the API surface the suite's benches
//! use: `criterion_group!`/`criterion_main!`, benchmark groups,
//! `sample_size`, `throughput`, `bench_function`/`bench_with_input`,
//! [`BenchmarkId`], and `Bencher::iter`. Each benchmark runs one warm-up
//! iteration plus `sample_size` timed samples and reports the median,
//! min, and max per iteration to stdout (one line per benchmark).
//!
//! Supports `cargo bench` filtering: a single CLI argument restricts runs to
//! benchmark ids containing it. `--test` switches to smoke mode, matching
//! criterion's test mode: every benchmark runs exactly one sample (after
//! the warm-up) and the line is prefixed `test` instead of `bench`, so CI
//! can exercise bench code paths without paying for timing. Other harness
//! flags (`--bench`, ...) are ignored.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], matching criterion's API.
pub use std::hint::black_box;

/// Top-level bench context; collects results and applies CLI filters.
#[derive(Debug)]
pub struct Criterion {
    filter: Option<String>,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // First free-standing CLI arg (if any) is a substring filter, like
        // `cargo bench -- <filter>`; `--test` selects smoke mode.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        let test_mode = std::env::args().skip(1).any(|a| a == "--test");
        Self { filter, test_mode }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: 100,
            throughput: None,
        }
    }

    /// Runs a stand-alone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut g = self.benchmark_group("");
        g.run_named(id, 100, f);
    }

    fn matches(&self, full_id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| full_id.contains(f))
    }
}

/// How work per iteration is reported (accepted but only echoed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, rendered `name/param`.
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        Self { id: format!("{}/{}", name.into(), param) }
    }

    /// An id that is just a parameter value.
    pub fn from_parameter(param: impl Display) -> Self {
        Self { id: param.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// A group of related benchmarks sharing a name prefix and sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Records the per-iteration throughput (echoed in the report line).
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_named(id.into(), self.sample_size, f);
        self
    }

    /// Runs a benchmark that receives `input` by reference.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run_named(id.into(), self.sample_size, |b| f(b, input));
        self
    }

    /// Finishes the group (reports are emitted eagerly; this is a no-op).
    pub fn finish(self) {}

    fn run_named<F>(&mut self, id: BenchmarkId, samples: usize, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let full_id =
            if self.name.is_empty() { id.id.clone() } else { format!("{}/{}", self.name, id.id) };
        if !self.criterion.matches(&full_id) {
            return;
        }
        let samples = if self.criterion.test_mode { 1 } else { samples };
        let mut bencher = Bencher { samples: Vec::with_capacity(samples + 1) };
        // One warm-up pass, then the timed samples.
        for _ in 0..samples + 1 {
            f(&mut bencher);
        }
        if bencher.samples.len() > 1 {
            bencher.samples.remove(0); // drop the warm-up
        }
        let mut per_iter: Vec<Duration> = bencher.samples;
        if per_iter.is_empty() {
            println!("bench {full_id:<40} (no samples)");
            return;
        }
        if self.criterion.test_mode {
            println!("test {full_id:<40} ok");
            return;
        }
        per_iter.sort_unstable();
        let median = per_iter[per_iter.len() / 2];
        let lo = per_iter[0];
        let hi = per_iter[per_iter.len() - 1];
        let thr = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!("  {:.3} Melem/s", n as f64 / median.as_secs_f64() / 1e6)
            }
            Some(Throughput::Bytes(n)) => {
                format!("  {:.3} MiB/s", n as f64 / median.as_secs_f64() / (1 << 20) as f64)
            }
            None => String::new(),
        };
        println!(
            "bench {full_id:<40} median {:>12} [{:>12} .. {:>12}]{thr}",
            fmt_duration(median),
            fmt_duration(lo),
            fmt_duration(hi),
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Times one sample per [`Bencher::iter`] call.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times one execution of `f` and records it as a sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        let out = f();
        self.samples.push(start.elapsed());
        black_box(out);
    }
}

/// Declares a bench entry point: `criterion_group!(name, fn1, fn2, ...)`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a bench binary: `criterion_main!(group1, ...)`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.throughput(Throughput::Elements(100));
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sum_to", 50), &50u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }

    #[test]
    fn test_mode_runs_one_sample() {
        let mut c = Criterion { filter: None, test_mode: true };
        let mut runs = 0u32;
        {
            let mut group = c.benchmark_group("smoke");
            group.sample_size(50);
            group.bench_function("count", |b| {
                b.iter(|| {
                    runs += 1;
                    runs
                })
            });
            group.finish();
        }
        // Warm-up + exactly one sample, never the configured 50.
        assert_eq!(runs, 2);
    }

    #[test]
    fn id_rendering() {
        assert_eq!(BenchmarkId::new("conv", 128).id, "conv/128");
        assert_eq!(BenchmarkId::from_parameter("static").id, "static");
    }
}
